// Package hbm models the FPGA's high-bandwidth memory, which the ICGMM
// prototype uses as the DRAM cache (Sec. 4), together with the on-board
// cache-tag/GMM-score table buffer of the cache control engine (Sec. 4.2).
// The model captures what the evaluation depends on: per-bank service
// latency with bank-conflict queueing, and the parallel tag comparison that
// makes hit/miss determination constant-time.
package hbm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Config sizes the HBM model. The Alveo U50 exposes 32 pseudo-channels;
// access latency is set so the end-to-end measured DRAM-cache hit time is
// the paper's 1 us.
type Config struct {
	Banks int
	// AccessLatency is the service time of one page-sized transfer.
	AccessLatency time.Duration
}

// DefaultConfig mirrors the U50-based prototype.
func DefaultConfig() Config {
	return Config{Banks: 32, AccessLatency: time.Microsecond}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return errors.New("hbm: bank count must be positive")
	}
	if c.AccessLatency <= 0 {
		return errors.New("hbm: access latency must be positive")
	}
	return nil
}

// Memory is the banked HBM model. Like ssd.Device it runs on virtual time.
type Memory struct {
	cfg      Config
	busy     []int64
	accesses stats.Counter
	lat      stats.LatencyAccumulator
}

// New builds the memory model.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Memory{cfg: cfg, busy: make([]int64, cfg.Banks)}, nil
}

// Access services one page transfer for the given page at virtual time
// nowNs, returning the completion time (queueing behind a busy bank plus the
// service latency).
func (m *Memory) Access(page uint64, nowNs int64) int64 {
	bank := int(page % uint64(m.cfg.Banks))
	start := nowNs
	if m.busy[bank] > start {
		start = m.busy[bank]
	}
	done := start + m.cfg.AccessLatency.Nanoseconds()
	m.busy[bank] = done
	m.accesses.Inc()
	m.lat.Observe(done - nowNs)
	return done
}

// State is the memory model's full mutable state: per-bank busy horizons on
// the virtual clock plus the access accounting. Part of the serving
// subsystem's checkpoint surface.
type State struct {
	Busy     []int64                `json:"busy"`
	Accesses uint64                 `json:"accesses"`
	Lat      stats.AccumulatorState `json:"lat"`
}

// State exports the model's mutable state.
func (m *Memory) State() State {
	return State{
		Busy:     append([]int64(nil), m.busy...),
		Accesses: m.accesses.Value(),
		Lat:      m.lat.State(),
	}
}

// RestoreState replaces the model's mutable state. The bank count must
// match the configuration.
func (m *Memory) RestoreState(s State) error {
	if len(s.Busy) != len(m.busy) {
		return fmt.Errorf("hbm: state has %d banks, memory has %d", len(s.Busy), len(m.busy))
	}
	copy(m.busy, s.Busy)
	m.accesses.Reset()
	m.accesses.Add(s.Accesses)
	m.lat.RestoreState(s.Lat)
	return nil
}

// HitLatency returns the nominal service latency in nanoseconds.
func (m *Memory) HitLatency() int64 { return m.cfg.AccessLatency.Nanoseconds() }

// Accesses returns the access count.
func (m *Memory) Accesses() uint64 { return m.accesses.Value() }

// MeanLatency returns the observed mean access latency.
func (m *Memory) MeanLatency() time.Duration { return m.lat.MeanDuration() }

// TagEntry is one way's worth of cache metadata held in the on-board buffer:
// the tag plus the GMM score that replaces the LRU counter (Sec. 3.2).
type TagEntry struct {
	Tag   uint64
	Valid bool
	Score float64
}

// TagBuffer is the on-board cache tag and GMM score table (Sec. 4.2). The
// buffer is partitioned by way so all tags of a set are compared against the
// target in a single cycle, as opposed to sequential comparison; Lookup
// models that with one pass over the ways of the chosen set.
type TagBuffer struct {
	ways    int
	entries [][]TagEntry // [set][way]
	lookups stats.Counter
}

// NewTagBuffer allocates the table.
func NewTagBuffer(sets, ways int) (*TagBuffer, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("hbm: invalid tag buffer geometry %dx%d", sets, ways)
	}
	e := make([][]TagEntry, sets)
	for i := range e {
		e[i] = make([]TagEntry, ways)
	}
	return &TagBuffer{ways: ways, entries: e}, nil
}

// Lookup compares the tag against every way of the set in parallel,
// returning the matching way or -1.
func (tb *TagBuffer) Lookup(set int, tag uint64) int {
	tb.lookups.Inc()
	for w, e := range tb.entries[set] {
		if e.Valid && e.Tag == tag {
			return w
		}
	}
	return -1
}

// Set writes one entry.
func (tb *TagBuffer) Set(set, way int, e TagEntry) { tb.entries[set][way] = e }

// Get reads one entry.
func (tb *TagBuffer) Get(set, way int) TagEntry { return tb.entries[set][way] }

// MinScoreWay returns the valid way with the lowest score, or -1 when the
// set has an invalid way (no eviction needed) — the hardware smart-eviction
// primitive.
func (tb *TagBuffer) MinScoreWay(set int) int {
	best := -1
	bestScore := 0.0
	for w, e := range tb.entries[set] {
		if !e.Valid {
			return -1
		}
		if best == -1 || e.Score < bestScore {
			best, bestScore = w, e.Score
		}
	}
	return best
}

// Lookups returns the number of Lookup calls.
func (tb *TagBuffer) Lookups() uint64 { return tb.lookups.Value() }
