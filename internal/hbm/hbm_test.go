package hbm

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{Banks: 0, AccessLatency: time.Microsecond}).Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	if err := (Config{Banks: 4}).Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestMemoryAccess(t *testing.T) {
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done := m.Access(0, 0)
	if done != 1000 {
		t.Errorf("access done at %d ns, want 1000", done)
	}
	if m.HitLatency() != 1000 {
		t.Errorf("HitLatency = %d", m.HitLatency())
	}
}

func TestBankConflict(t *testing.T) {
	m, _ := New(Config{Banks: 2, AccessLatency: time.Microsecond})
	// Pages 0 and 2 map to bank 0: second queues behind first.
	m.Access(0, 0)
	done := m.Access(2, 0)
	if done != 2000 {
		t.Errorf("conflicting access done at %d, want 2000", done)
	}
	// Page 1 on bank 1 proceeds independently.
	if done := m.Access(1, 0); done != 1000 {
		t.Errorf("independent bank done at %d, want 1000", done)
	}
	if m.Accesses() != 3 {
		t.Errorf("accesses = %d", m.Accesses())
	}
	if m.MeanLatency() != (1000+2000+1000)/3*time.Nanosecond {
		t.Errorf("mean latency = %v", m.MeanLatency())
	}
}

func TestTagBuffer(t *testing.T) {
	tb, err := NewTagBuffer(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTagBuffer(0, 2); err == nil {
		t.Error("zero sets accepted")
	}
	tb.Set(1, 0, TagEntry{Tag: 42, Valid: true, Score: 0.9})
	tb.Set(1, 1, TagEntry{Tag: 43, Valid: true, Score: 0.3})
	if w := tb.Lookup(1, 42); w != 0 {
		t.Errorf("Lookup(42) = %d, want 0", w)
	}
	if w := tb.Lookup(1, 99); w != -1 {
		t.Errorf("Lookup(99) = %d, want -1", w)
	}
	if w := tb.Lookup(2, 42); w != -1 {
		t.Errorf("Lookup in wrong set = %d, want -1", w)
	}
	if tb.Lookups() != 3 {
		t.Errorf("lookups = %d", tb.Lookups())
	}
	if e := tb.Get(1, 1); e.Tag != 43 || e.Score != 0.3 {
		t.Errorf("Get = %+v", e)
	}
}

func TestMinScoreWay(t *testing.T) {
	tb, _ := NewTagBuffer(2, 3)
	// Set 0 has an invalid way: no eviction needed.
	tb.Set(0, 0, TagEntry{Tag: 1, Valid: true, Score: 0.5})
	if w := tb.MinScoreWay(0); w != -1 {
		t.Errorf("MinScoreWay with free way = %d, want -1", w)
	}
	// Fill set 1 and check the lowest score wins.
	tb.Set(1, 0, TagEntry{Tag: 1, Valid: true, Score: 0.5})
	tb.Set(1, 1, TagEntry{Tag: 2, Valid: true, Score: 0.1})
	tb.Set(1, 2, TagEntry{Tag: 3, Valid: true, Score: 0.9})
	if w := tb.MinScoreWay(1); w != 1 {
		t.Errorf("MinScoreWay = %d, want 1", w)
	}
}
