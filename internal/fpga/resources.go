package fpga

import (
	"fmt"
	"time"

	"repro/internal/lstm"
)

// ClockMHz is the prototype's kernel clock (Sec. 5.1).
const ClockMHz = 233

// CycleNs is the clock period in nanoseconds.
const CycleNs = 1000.0 / ClockMHz

// CyclesToDuration converts a cycle count at the prototype clock.
func CyclesToDuration(cycles int64) time.Duration {
	return time.Duration(float64(cycles) * CycleNs)
}

// Utilization is one design's FPGA resource usage, the Table 2 row format.
type Utilization struct {
	BRAM, DSP, LUT, FF int
	Latency            time.Duration
}

// String renders the row.
func (u Utilization) String() string {
	return fmt.Sprintf("BRAM=%d DSP=%d LUT=%d FF=%d latency=%v",
		u.BRAM, u.DSP, u.LUT, u.FF, u.Latency)
}

// U50 capacity, for utilization percentages (Alveo U50: 1344 BRAM36,
// 5952 DSP48, 872k LUT, 1743k FF).
var U50 = Utilization{BRAM: 1344, DSP: 5952, LUT: 872000, FF: 1743000}

// GMMEngineModel is the analytic cost model of the GMM policy engine
// (Sec. 4.1). The constants are calibrated against the paper's synthesis
// report for K = 256 at 233 MHz: 8 BRAM, 113 DSP, 58353 LUT, 152583 FF,
// 3 us inference. The structure of each formula follows the architecture:
//
//   - Weights: six 32-bit constants per Gaussian, double-buffered in BRAM
//     blocks of 4.5 KiB.
//   - DSP: a fixed four-lane multiply-add datapath (the pipeline is reused
//     across Gaussians, so DSP count is independent of K).
//   - LUT/FF: grow linearly with K — the score-accumulation shift register
//     (Sec. 4.1) and per-Gaussian pipeline registers dominate.
//   - Latency: one Gaussian enters the pipeline per cycle (II = 1), so a
//     K-term mixture drains in K cycles plus the pipeline depth.
type GMMEngineModel struct {
	// K is the number of Gaussian components.
	K int
	// PipelineDepth is the PE's stage count (exp/accumulate units).
	PipelineDepth int
	// Lanes is the number of parallel multiply-add lanes.
	Lanes int
}

// PaperGMMEngine returns the deployed configuration (K = 256).
func PaperGMMEngine() GMMEngineModel {
	return GMMEngineModel{K: 256, PipelineDepth: 443, Lanes: 4}
}

// WeightBytes returns the on-chip weight buffer footprint: six 32-bit words
// per Gaussian (two means, three folded precision terms, one log
// coefficient), matching gmm.QuantizedModel.
func (m GMMEngineModel) WeightBytes() int { return m.K * 6 * 4 }

// InferenceCycles returns the latency of one score computation.
func (m GMMEngineModel) InferenceCycles() int64 {
	return int64(m.K + m.PipelineDepth)
}

// Utilization evaluates the resource model.
func (m GMMEngineModel) Utilization() Utilization {
	bramBlocks := (m.WeightBytes() + 4607) / 4608 // 4.5 KiB BRAM36 blocks
	return Utilization{
		BRAM:    2*bramBlocks + 4, // double-buffered weights + stream FIFOs
		DSP:     m.Lanes*24 + 17,  // per-lane mul/add/exp + control
		LUT:     190*m.K + 9713,
		FF:      560*m.K + 9223,
		Latency: CyclesToDuration(m.InferenceCycles()),
	}
}

// LSTMEngineModel is the cost model of the LSTM policy engine baseline
// (Table 2): a 3-layer, hidden-128 network evaluated sequence-at-a-time.
// Calibrated against the paper's baseline synthesis: 339 BRAM, 145 DSP,
// 85029 LUT, 103561 FF, 46.3 ms inference.
//
// The latency structure explains the paper's 15433x gap: the recurrent
// dependence serializes the gate matrix-vector products (about one MAC per
// cycle effective throughput), and each layer-step additionally pays a
// serialized element-wise pass (sigmoid/tanh/Hadamard) over the hidden
// units.
type LSTMEngineModel struct {
	Net lstm.Config
	// ElemCyclesPerUnit is the serialized element-wise cost per hidden
	// unit per layer-step (gate nonlinearities and products).
	ElemCyclesPerUnit int
}

// PaperLSTMEngine returns the Table 2 baseline.
func PaperLSTMEngine() LSTMEngineModel {
	return LSTMEngineModel{Net: lstm.PaperBaseline(), ElemCyclesPerUnit: 22}
}

// InferenceCycles returns the latency of one sequence inference.
func (m LSTMEngineModel) InferenceCycles() int64 {
	macs := int64(m.Net.MACsPerInference())
	layerSteps := int64(m.Net.SeqLen * m.Net.Layers)
	elem := layerSteps * int64(m.Net.HiddenDim) * int64(m.ElemCyclesPerUnit)
	return macs + elem
}

// WeightBytes returns the parameter footprint at 16-bit precision.
func (m LSTMEngineModel) WeightBytes() int { return m.Net.ParamCount() * 2 }

// Utilization evaluates the resource model.
func (m LSTMEngineModel) Utilization() Utilization {
	bram := (m.WeightBytes()+2303)/2304 + 52 // 2.25 KiB BRAM18 blocks + buffers
	return Utilization{
		BRAM:    bram,
		DSP:     m.Net.HiddenDim + 17, // one MAC lane per hidden unit + control
		LUT:     600*m.Net.HiddenDim + 8229,
		FF:      800*m.Net.HiddenDim + 1161,
		Latency: CyclesToDuration(m.InferenceCycles()),
	}
}

// CompareEngines summarizes the Table 2 comparison: per-resource gain of the
// GMM engine over the LSTM engine and the latency ratio.
type EngineComparison struct {
	LSTM, GMM Utilization
	// BRAMRatio etc. are LSTM/GMM resource ratios (>1 means GMM smaller).
	BRAMRatio, DSPRatio, LUTRatio, FFRatio float64
	// Speedup is LSTM latency / GMM latency.
	Speedup float64
}

// CompareEngines evaluates both paper-configuration engines.
func CompareEngines() EngineComparison {
	l := PaperLSTMEngine().Utilization()
	g := PaperGMMEngine().Utilization()
	return EngineComparison{
		LSTM:      l,
		GMM:       g,
		BRAMRatio: float64(l.BRAM) / float64(g.BRAM),
		DSPRatio:  float64(l.DSP) / float64(g.DSP),
		LUTRatio:  float64(l.LUT) / float64(g.LUT),
		FFRatio:   float64(l.FF) / float64(g.FF),
		Speedup:   float64(l.Latency) / float64(g.Latency),
	}
}
