package fpga

import (
	"errors"
	"fmt"
)

// AccessEvent is one page request annotated with the cache outcome, the
// input to the timing simulation. Outcomes come from a functional cache
// simulation (internal/cache); this model adds the hardware timing.
type AccessEvent struct {
	Page      uint64
	Write     bool
	Hit       bool
	WriteBack bool
	// Bypassed marks misses the policy declined to cache.
	Bypassed bool
}

// DataflowConfig times the Fig. 5 architecture.
type DataflowConfig struct {
	// GMM is the policy-engine model; its InferenceCycles is the per-miss
	// scoring latency.
	GMM GMMEngineModel
	// PolicyEnabled mirrors the signal controller's activation of the
	// policy engine; disabled, the system runs plain LRU with no scoring
	// cost (Sec. 4.1).
	PolicyEnabled bool
	// Overlap selects the dataflow behaviour of Sec. 4.3: policy engine
	// and SSD emulator triggered concurrently on a miss. Disabling it
	// serializes SSD access after scoring (the ablation configuration).
	Overlap bool
	// TagCompareCycles is the parallel tag comparison time (Sec. 4.2).
	TagCompareCycles int64
	// HitCycles is the HBM data-return time on a hit (1 us measured).
	HitCycles int64
	// SSDReadCycles / SSDWriteCycles time the latency emulator (75 us /
	// 900 us at 233 MHz).
	SSDReadCycles, SSDWriteCycles int64
	// Outstanding is the host's request window: request i enters the
	// device only after response i-Outstanding has left (CXL.mem hosts
	// issue loads near-synchronously; 1 models a fully synchronous host).
	// Values <= 0 default to 1.
	Outstanding int
}

// DefaultDataflowConfig returns the paper's measured timing at 233 MHz.
func DefaultDataflowConfig() DataflowConfig {
	return DataflowConfig{
		GMM:              PaperGMMEngine(),
		PolicyEnabled:    true,
		Overlap:          true,
		TagCompareCycles: 2,
		HitCycles:        233,    // ~1 us
		SSDReadCycles:    17475,  // 75 us
		SSDWriteCycles:   209700, // 900 us
		Outstanding:      1,
	}
}

// Validate checks the timing parameters.
func (c DataflowConfig) Validate() error {
	if c.TagCompareCycles < 0 || c.HitCycles <= 0 ||
		c.SSDReadCycles <= 0 || c.SSDWriteCycles <= 0 {
		return errors.New("fpga: non-positive timing parameter")
	}
	return nil
}

// Timeline reports the timing simulation.
type Timeline struct {
	// TotalCycles is the completion cycle of the last response.
	TotalCycles int64
	// Responses holds each request's completion cycle, in request order.
	Responses []int64
	// Arrivals holds the cycle each request entered the device (after
	// waiting for the host window).
	Arrivals []int64
	// GMMBusy/SSDBusy/CtrlBusy accumulate per-module busy cycles, the
	// utilization view of the dataflow.
	GMMBusy, SSDBusy, CtrlBusy int64
	// HiddenGMMCycles counts policy-engine cycles fully overlapped with
	// SSD access — the Sec. 4.3 win.
	HiddenGMMCycles int64
}

// MeanLatencyCycles returns the average per-request latency in cycles,
// measured from each request's entry into the device to its response.
func (t *Timeline) MeanLatencyCycles() float64 {
	if len(t.Responses) == 0 {
		return 0
	}
	var sum int64
	for i, r := range t.Responses {
		sum += r - t.Arrivals[i]
	}
	return float64(sum) / float64(len(t.Responses))
}

// SimulateDataflow runs the Fig. 5 pipeline over the annotated accesses.
// The model tracks per-module availability (controller, policy engine, SSD
// emulator) and FIFO-style in-order responses:
//
//   - The controller decodes one trace and compares tags; it is free to
//     fetch the next trace as soon as the comparison finishes (trace
//     loading overlaps cache management, Sec. 4.3).
//   - On a miss with the policy engine enabled, scoring and SSD access
//     start concurrently when Overlap is set; otherwise the SSD access
//     waits for the score.
//   - A dirty eviction serializes the victim write-back after the fill
//     read on the SSD emulator.
func SimulateDataflow(events []AccessEvent, cfg DataflowConfig) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tl := &Timeline{
		Responses: make([]int64, len(events)),
		Arrivals:  make([]int64, len(events)),
	}
	var ctrlFree, gmmFree, ssdFree, lastResp int64
	window := cfg.Outstanding
	if window <= 0 {
		window = 1
	}

	for i, ev := range events {
		arrival := int64(i) // at most one request per cycle from the trace FIFO
		if i >= window {
			// The host window is full until response i-window drains.
			arrival = max64(arrival, tl.Responses[i-window])
		}
		tl.Arrivals[i] = arrival
		start := max64(arrival, ctrlFree)
		tagDone := start + cfg.TagCompareCycles
		tl.CtrlBusy += tagDone - start
		// Controller pipelines the next trace fetch immediately after the
		// tag comparison.
		ctrlFree = tagDone

		var resp int64
		switch {
		case ev.Hit:
			resp = tagDone + cfg.HitCycles
		default:
			gmmDone := tagDone
			if cfg.PolicyEnabled {
				gmmStart := max64(tagDone, gmmFree)
				gmmDone = gmmStart + cfg.GMM.InferenceCycles()
				gmmFree = gmmDone
				tl.GMMBusy += cfg.GMM.InferenceCycles()
			}
			ssdKickoff := tagDone
			if cfg.PolicyEnabled && !cfg.Overlap {
				ssdKickoff = gmmDone
			}
			var ssdCycles int64
			switch {
			case ev.Bypassed && ev.Write:
				ssdCycles = cfg.SSDWriteCycles
			case ev.Bypassed:
				ssdCycles = cfg.SSDReadCycles
			default:
				ssdCycles = cfg.SSDReadCycles
				if ev.WriteBack {
					ssdCycles += cfg.SSDWriteCycles
				}
			}
			ssdStart := max64(ssdKickoff, ssdFree)
			ssdDone := ssdStart + ssdCycles
			ssdFree = ssdDone
			tl.SSDBusy += ssdCycles

			if cfg.PolicyEnabled && cfg.Overlap {
				hidden := min64(gmmDone, ssdDone) - max64(tagDone, gmmDone-cfg.GMM.InferenceCycles())
				if hidden > 0 {
					tl.HiddenGMMCycles += hidden
				}
			}
			resp = max64(gmmDone, ssdDone) + cfg.HitCycles
		}
		// Responses leave through the rsp FIFO in order.
		if resp <= lastResp {
			resp = lastResp + 1
		}
		lastResp = resp
		tl.Responses[i] = resp
	}
	tl.TotalCycles = lastResp
	return tl, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// PipelineSim verifies the GMM PE's initiation-interval behaviour cycle by
// cycle: a pipeline of the configured depth accepts one Gaussian term per
// cycle (II = 1) and the accumulated score emerges K + depth cycles after
// the first term enters. It is the micro-model behind
// GMMEngineModel.InferenceCycles.
type PipelineSim struct {
	depth int
	// stages[i] holds the Gaussian index occupying stage i, or -1.
	stages []int
	in     *FIFO[int]
	// Done collects (gaussian index, completion cycle) pairs.
	Done []int64
	// acc counts accumulated terms; when it reaches K the score is ready.
	acc, k int
	cycle  int64
}

// NewPipelineSim builds a pipeline simulation for k Gaussians.
func NewPipelineSim(k, depth int) (*PipelineSim, error) {
	if k <= 0 || depth <= 0 {
		return nil, fmt.Errorf("fpga: invalid pipeline shape k=%d depth=%d", k, depth)
	}
	in, err := NewFIFO[int]("gaussian-terms", k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		in.Push(i)
	}
	stages := make([]int, depth)
	for i := range stages {
		stages[i] = -1
	}
	return &PipelineSim{depth: depth, stages: stages, in: in, k: k}, nil
}

// Run advances the pipeline until the full score is accumulated and returns
// the completion cycle.
func (p *PipelineSim) Run() int64 {
	for p.acc < p.k {
		p.cycle++
		// Drain the last stage into the accumulator (shift register
		// resolves the dependency, Sec. 4.1).
		if p.stages[p.depth-1] >= 0 {
			p.acc++
			p.Done = append(p.Done, p.cycle)
		}
		// Advance the pipeline one stage.
		copy(p.stages[1:], p.stages[:p.depth-1])
		// Issue one new term per cycle: II = 1.
		if v, ok := p.in.Pop(); ok {
			p.stages[0] = v
		} else {
			p.stages[0] = -1
		}
	}
	return p.cycle
}
