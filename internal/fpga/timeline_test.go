package fpga

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func randomEvents(r *rand.Rand, n int) []AccessEvent {
	evs := make([]AccessEvent, n)
	for i := range evs {
		evs[i] = AccessEvent{
			Page:      r.Uint64() % 4096,
			Write:     r.Intn(4) == 0,
			Hit:       r.Intn(3) != 0,
			WriteBack: r.Intn(8) == 0,
			Bypassed:  r.Intn(5) == 0,
		}
	}
	return evs
}

func timelineConfigs() []DataflowConfig {
	base := DefaultDataflowConfig()
	noOverlap := base
	noOverlap.Overlap = false
	noPolicy := base
	noPolicy.PolicyEnabled = false
	deep := base
	deep.Outstanding = 16
	zeroTag := base
	zeroTag.TagCompareCycles = 0
	zeroTag.Outstanding = 4
	return []DataflowConfig{base, noOverlap, noPolicy, deep, zeroTag}
}

// The incremental timeline fed with the batch simulator's arrival rule
// (one request per cycle) must reproduce SimulateDataflow cycle-exactly:
// entries, responses, busy counters, and hidden-cycle accounting.
func TestDeviceTimelineMatchesSimulateDataflow(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for ci, cfg := range timelineConfigs() {
		events := randomEvents(r, 500)
		want, err := SimulateDataflow(events, cfg)
		if err != nil {
			t.Fatalf("cfg %d: SimulateDataflow: %v", ci, err)
		}
		tl, err := NewDeviceTimeline(cfg)
		if err != nil {
			t.Fatalf("cfg %d: NewDeviceTimeline: %v", ci, err)
		}
		for i, ev := range events {
			entry, resp, _ := tl.Advance(ev, int64(i))
			if entry != want.Arrivals[i] {
				t.Fatalf("cfg %d event %d: entry %d, want %d", ci, i, entry, want.Arrivals[i])
			}
			if resp != want.Responses[i] {
				t.Fatalf("cfg %d event %d: resp %d, want %d", ci, i, resp, want.Responses[i])
			}
		}
		gmm, ssd, ctrl, hidden := tl.Busy()
		if gmm != want.GMMBusy || ssd != want.SSDBusy || ctrl != want.CtrlBusy || hidden != want.HiddenGMMCycles {
			t.Fatalf("cfg %d: busy (%d,%d,%d,%d), want (%d,%d,%d,%d)", ci,
				gmm, ssd, ctrl, hidden,
				want.GMMBusy, want.SSDBusy, want.CtrlBusy, want.HiddenGMMCycles)
		}
		if tl.WallCycles() != want.TotalCycles {
			t.Fatalf("cfg %d: wall %d, want %d", ci, tl.WallCycles(), want.TotalCycles)
		}
		if tl.Issued() != uint64(len(events)) {
			t.Fatalf("cfg %d: issued %d, want %d", ci, tl.Issued(), len(events))
		}
	}
}

// No module can be busy for more cycles than the wall clock has advanced,
// under any event mix, arrival spacing, or window size.
func TestDeviceTimelineBusyNeverExceedsWall(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		cfg := DefaultDataflowConfig()
		cfg.Outstanding = 1 + r.Intn(8)
		cfg.Overlap = r.Intn(2) == 0
		cfg.PolicyEnabled = r.Intn(4) != 0
		tl, err := NewDeviceTimeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		arrival := int64(0)
		for _, ev := range randomEvents(r, 200) {
			arrival += int64(r.Intn(2000))
			tl.Advance(ev, arrival)
		}
		wall := tl.WallCycles()
		gmm, ssd, ctrl, hidden := tl.Busy()
		for name, busy := range map[string]int64{"gmm": gmm, "ssd": ssd, "ctrl": ctrl} {
			if busy < 0 || busy > wall {
				t.Fatalf("iter %d: %s busy %d outside [0, wall=%d]", iter, name, busy, wall)
			}
		}
		if hidden < 0 || hidden > gmm {
			t.Fatalf("iter %d: hidden %d outside [0, gmm=%d]", iter, hidden, gmm)
		}
	}
}

// Depth is bounded by the window, drops as responses drain, and stalls are
// exactly the arrivals that found the window full and undrained.
func TestDeviceTimelineDepthAndStalls(t *testing.T) {
	cfg := DefaultDataflowConfig()
	cfg.Outstanding = 4
	tl, err := NewDeviceTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := tl.Depth(0); d != 0 {
		t.Fatalf("empty timeline depth %d, want 0", d)
	}
	ev := AccessEvent{Bypassed: true} // 75 us SSD read per request
	var lastResp int64
	for i := 0; i < 32; i++ {
		arrival := int64(i) // far faster than the SSD drains
		if d := tl.Depth(arrival); d > tl.Window() {
			t.Fatalf("depth %d exceeds window %d", d, tl.Window())
		}
		_, resp, _ := tl.Advance(ev, arrival)
		if resp <= lastResp {
			t.Fatalf("response %d not after previous %d", resp, lastResp)
		}
		lastResp = resp
	}
	// Back-to-back arrivals against a 75 us service time: every arrival
	// after the window fills must stall.
	if got, want := tl.Stalls(), uint64(32-4); got != want {
		t.Fatalf("stalls %d, want %d", got, want)
	}
	// After the last response drains, the window is empty again.
	if d := tl.Depth(lastResp); d != 0 {
		t.Fatalf("depth %d after all responses drained, want 0", d)
	}
	if d := tl.Depth(lastResp - 1); d != 1 {
		t.Fatalf("depth %d with one response in flight, want 1", d)
	}
}

// State/RestoreState round-trips through JSON and resumes the cursor model
// exactly: a restored timeline must produce the same responses as the
// original from any split point, including mid-window.
func TestDeviceTimelineStateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	cfg := DefaultDataflowConfig()
	cfg.Outstanding = 5
	events := randomEvents(r, 300)
	arrivals := make([]int64, len(events))
	a := int64(0)
	for i := range arrivals {
		a += int64(r.Intn(3000))
		arrivals[i] = a
	}
	full, err := NewDeviceTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantResp := make([]int64, len(events))
	for i, ev := range events {
		_, wantResp[i], _ = full.Advance(ev, arrivals[i])
	}
	for _, split := range []int{0, 1, 3, 7, 150, 299} {
		tl, err := NewDeviceTimeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < split; i++ {
			tl.Advance(events[i], arrivals[i])
		}
		blob, err := json.Marshal(tl.State())
		if err != nil {
			t.Fatal(err)
		}
		var st TimelineState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		resumed, err := NewDeviceTimeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		for i := split; i < len(events); i++ {
			_, resp, _ := resumed.Advance(events[i], arrivals[i])
			if resp != wantResp[i] {
				t.Fatalf("split %d event %d: resp %d, want %d", split, i, resp, wantResp[i])
			}
		}
		if !reflect.DeepEqual(resumed.State(), full.State()) {
			t.Fatalf("split %d: final state diverged:\n%+v\n%+v", split, resumed.State(), full.State())
		}
	}
}

func TestDeviceTimelineRestoreRejectsOversizedWindow(t *testing.T) {
	tl, err := NewDeviceTimeline(DefaultDataflowConfig()) // window 1
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.RestoreState(TimelineState{Window: []int64{1, 2}}); err == nil {
		t.Fatal("expected error restoring 2 outstanding responses into window 1")
	}
}

func TestNewDeviceTimelineValidates(t *testing.T) {
	cfg := DefaultDataflowConfig()
	cfg.HitCycles = 0
	if _, err := NewDeviceTimeline(cfg); err == nil {
		t.Fatal("expected validation error")
	}
}
