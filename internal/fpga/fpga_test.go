package fpga

import (
	"math"
	"testing"
	"time"
)

func TestFIFOBasics(t *testing.T) {
	f, err := NewFIFO[int]("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFIFO[int]("bad", 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if !f.Empty() || f.Full() {
		t.Error("fresh FIFO state wrong")
	}
	if !f.Push(1) || !f.Push(2) {
		t.Fatal("pushes failed")
	}
	if f.Push(3) {
		t.Error("push into full FIFO succeeded")
	}
	if f.Len() != 2 || f.Peak() != 2 || f.Cap() != 2 || f.Name() != "t" {
		t.Error("accessors wrong")
	}
	if v, ok := f.Peek(); !ok || v != 1 {
		t.Error("Peek wrong")
	}
	if v, ok := f.Pop(); !ok || v != 1 {
		t.Error("Pop order wrong")
	}
	if v, ok := f.Pop(); !ok || v != 2 {
		t.Error("Pop order wrong")
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop from empty FIFO succeeded")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f, _ := NewFIFO[int]("w", 3)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if !f.Push(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := f.Pop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: got %d ok=%v", round, v, ok)
			}
		}
	}
}

func TestGMMEngineMatchesPaperTable2(t *testing.T) {
	u := PaperGMMEngine().Utilization()
	if u.BRAM != 8 {
		t.Errorf("BRAM = %d, want 8", u.BRAM)
	}
	if u.DSP != 113 {
		t.Errorf("DSP = %d, want 113", u.DSP)
	}
	if u.LUT != 58353 {
		t.Errorf("LUT = %d, want 58353", u.LUT)
	}
	if u.FF != 152583 {
		t.Errorf("FF = %d, want 152583", u.FF)
	}
	if u.Latency < 2900*time.Nanosecond || u.Latency > 3100*time.Nanosecond {
		t.Errorf("latency = %v, want ~3us", u.Latency)
	}
}

func TestLSTMEngineMatchesPaperTable2(t *testing.T) {
	u := PaperLSTMEngine().Utilization()
	if u.BRAM != 339 {
		t.Errorf("BRAM = %d, want 339", u.BRAM)
	}
	if u.DSP != 145 {
		t.Errorf("DSP = %d, want 145", u.DSP)
	}
	if u.LUT != 85029 {
		t.Errorf("LUT = %d, want 85029", u.LUT)
	}
	if u.FF != 103561 {
		t.Errorf("FF = %d, want 103561", u.FF)
	}
	if u.Latency < 46*time.Millisecond || u.Latency > 47*time.Millisecond {
		t.Errorf("latency = %v, want ~46.3ms", u.Latency)
	}
}

func TestCompareEnginesSpeedup(t *testing.T) {
	c := CompareEngines()
	// The paper reports >10000x (15433x); the derived model must land in
	// that regime.
	if c.Speedup < 10_000 || c.Speedup > 20_000 {
		t.Errorf("speedup = %.0f, want ~15000", c.Speedup)
	}
	if c.BRAMRatio < 40 {
		t.Errorf("BRAM ratio = %.1f, want > 40 (paper: 339/8)", c.BRAMRatio)
	}
	if c.DSPRatio <= 1 {
		t.Errorf("DSP ratio = %.2f, want > 1", c.DSPRatio)
	}
}

func TestGMMUtilizationWithinU50(t *testing.T) {
	u := PaperGMMEngine().Utilization()
	if u.BRAM > U50.BRAM || u.DSP > U50.DSP || u.LUT > U50.LUT || u.FF > U50.FF {
		t.Errorf("GMM engine exceeds U50 capacity: %v", u)
	}
	// The paper reports 14% BRAM and 2% DSP for the full system; the
	// engine alone must be below those.
	if pct := 100 * float64(u.DSP) / float64(U50.DSP); pct > 2.5 {
		t.Errorf("DSP utilization %.1f%%, want < 2.5%%", pct)
	}
}

func TestCyclesToDuration(t *testing.T) {
	d := CyclesToDuration(233)
	if d < 999*time.Nanosecond || d > 1001*time.Nanosecond {
		t.Errorf("233 cycles = %v, want ~1us", d)
	}
}

func TestPipelineSimIIOne(t *testing.T) {
	// K Gaussians through a depth-D pipeline with II=1 finish at K+D.
	const k, depth = 16, 5
	p, err := NewPipelineSim(k, depth)
	if err != nil {
		t.Fatal(err)
	}
	done := p.Run()
	if done != k+depth {
		t.Errorf("completion cycle = %d, want %d", done, k+depth)
	}
	// One result per cycle after the pipeline fills.
	for i := 1; i < len(p.Done); i++ {
		if p.Done[i] != p.Done[i-1]+1 {
			t.Fatalf("results not II=1: %v", p.Done)
		}
	}
	if _, err := NewPipelineSim(0, 5); err == nil {
		t.Error("invalid pipeline accepted")
	}
}

func TestPipelineSimMatchesEngineModel(t *testing.T) {
	m := PaperGMMEngine()
	p, err := NewPipelineSim(m.K, m.PipelineDepth)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Run(); got != m.InferenceCycles() {
		t.Errorf("pipeline sim %d cycles, model says %d", got, m.InferenceCycles())
	}
}

func TestDataflowHitLatency(t *testing.T) {
	cfg := DefaultDataflowConfig()
	tl, err := SimulateDataflow([]AccessEvent{{Hit: true}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TagCompareCycles + cfg.HitCycles
	if tl.Responses[0] != want {
		t.Errorf("hit response at %d, want %d", tl.Responses[0], want)
	}
}

func TestDataflowOverlapHidesGMM(t *testing.T) {
	cfg := DefaultDataflowConfig()
	miss := []AccessEvent{{Hit: false}}
	on, err := SimulateDataflow(miss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = false
	off, err := SimulateDataflow(miss, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gmmCycles := cfg.GMM.InferenceCycles()
	if off.Responses[0]-on.Responses[0] != gmmCycles {
		t.Errorf("serialization penalty = %d cycles, want %d",
			off.Responses[0]-on.Responses[0], gmmCycles)
	}
	if on.HiddenGMMCycles != gmmCycles {
		t.Errorf("hidden cycles = %d, want %d", on.HiddenGMMCycles, gmmCycles)
	}
}

func TestDataflowPolicyDisabledNoGMMCost(t *testing.T) {
	cfg := DefaultDataflowConfig()
	cfg.PolicyEnabled = false
	tl, err := SimulateDataflow([]AccessEvent{{Hit: false}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TagCompareCycles + cfg.SSDReadCycles + cfg.HitCycles
	if tl.Responses[0] != want {
		t.Errorf("response at %d, want %d", tl.Responses[0], want)
	}
	if tl.GMMBusy != 0 {
		t.Error("GMM busy while disabled")
	}
}

func TestDataflowWriteBackSerializes(t *testing.T) {
	cfg := DefaultDataflowConfig()
	tl, err := SimulateDataflow([]AccessEvent{{Hit: false, WriteBack: true}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TagCompareCycles + cfg.SSDReadCycles + cfg.SSDWriteCycles + cfg.HitCycles
	if tl.Responses[0] != want {
		t.Errorf("response at %d, want %d", tl.Responses[0], want)
	}
}

func TestDataflowBypassedWrite(t *testing.T) {
	cfg := DefaultDataflowConfig()
	tl, err := SimulateDataflow([]AccessEvent{{Hit: false, Bypassed: true, Write: true}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.TagCompareCycles + cfg.SSDWriteCycles + cfg.HitCycles
	if tl.Responses[0] != want {
		t.Errorf("bypassed write response at %d, want %d", tl.Responses[0], want)
	}
}

func TestDataflowInOrderResponses(t *testing.T) {
	events := []AccessEvent{
		{Hit: false}, // slow
		{Hit: true},  // fast, but must respond after the miss
		{Hit: true},
	}
	tl, err := SimulateDataflow(events, DefaultDataflowConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tl.Responses); i++ {
		if tl.Responses[i] <= tl.Responses[i-1] {
			t.Fatalf("responses out of order: %v", tl.Responses)
		}
	}
}

func TestDataflowPipelinesIndependentRequests(t *testing.T) {
	// Hits behind a miss: controller keeps fetching (trace loading
	// overlaps cache management), so total time is far less than the sum
	// of isolated latencies.
	var events []AccessEvent
	for i := 0; i < 50; i++ {
		events = append(events, AccessEvent{Hit: true})
	}
	cfgW := DefaultDataflowConfig()
	cfgW.Outstanding = 8
	tl, err := SimulateDataflow(events, cfgW)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDataflowConfig()
	isolated := int64(50) * (cfg.TagCompareCycles + cfg.HitCycles)
	if tl.TotalCycles >= isolated {
		t.Errorf("no pipelining: total %d >= serial %d", tl.TotalCycles, isolated)
	}
}

func TestDataflowMeanLatency(t *testing.T) {
	tl, err := SimulateDataflow([]AccessEvent{{Hit: true}, {Hit: true}}, DefaultDataflowConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m := tl.MeanLatencyCycles(); m <= 0 || math.IsNaN(m) {
		t.Errorf("mean latency = %v", m)
	}
	empty := &Timeline{}
	if empty.MeanLatencyCycles() != 0 {
		t.Error("empty timeline mean should be 0")
	}
}

func TestDataflowValidate(t *testing.T) {
	cfg := DefaultDataflowConfig()
	cfg.HitCycles = 0
	if _, err := SimulateDataflow(nil, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}
