// Package fpga models the ICGMM hardware prototype of Sec. 4: the dataflow
// architecture built from FIFO-connected free-running kernels, the deeply
// pipelined GMM processing element (II = 1), the SSD access-latency
// emulator, and an analytic resource model calibrated against the paper's
// Vitis HLS synthesis results (Table 2 and Sec. 5.1).
//
// The simulator is cycle-accurate at the granularity the evaluation needs:
// kernel service times, FIFO backpressure, and the concurrency between the
// cache policy engine and the SSD emulator on a miss (the Sec. 4.3 overlap).
package fpga

import "errors"

// FIFO is a bounded queue connecting two kernels, the hardware stream
// interface of the dataflow design.
type FIFO[T any] struct {
	name  string
	buf   []T
	head  int
	count int
	// peak tracks the maximum occupancy reached, for sizing reports.
	peak int
}

// NewFIFO creates a FIFO with the given capacity.
func NewFIFO[T any](name string, capacity int) (*FIFO[T], error) {
	if capacity <= 0 {
		return nil, errors.New("fpga: FIFO capacity must be positive")
	}
	return &FIFO[T]{name: name, buf: make([]T, capacity)}, nil
}

// Name returns the FIFO's name.
func (f *FIFO[T]) Name() string { return f.name }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Len returns the current occupancy.
func (f *FIFO[T]) Len() int { return f.count }

// Peak returns the maximum occupancy observed.
func (f *FIFO[T]) Peak() int { return f.peak }

// Empty reports whether the FIFO holds no elements.
func (f *FIFO[T]) Empty() bool { return f.count == 0 }

// Full reports whether a push would block.
func (f *FIFO[T]) Full() bool { return f.count == len(f.buf) }

// Push enqueues v, reporting false when the FIFO is full (backpressure).
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		return false
	}
	f.buf[(f.head+f.count)%len(f.buf)] = v
	f.count++
	if f.count > f.peak {
		f.peak = f.count
	}
	return true
}

// Pop dequeues the oldest element, reporting false when empty.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	return v, true
}

// Peek returns the oldest element without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	return f.buf[f.head], true
}
