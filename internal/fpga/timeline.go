package fpga

import "fmt"

// DeviceTimeline is the incremental form of SimulateDataflow: the same Fig. 5
// per-module cursor model, advanced one annotated access at a time so a
// long-running serving loop can feed it requests as they arrive instead of
// batching a finished trace. Feeding events with arrival cycles 0,1,2,... is
// cycle-exact with SimulateDataflow over the same event sequence (pinned by
// TestDeviceTimelineMatchesSimulateDataflow); arbitrary arrival cycles model
// an open-loop host whose requests are spaced by wall-clock, not by the
// one-per-cycle trace FIFO.
//
// The full cursor state exports through TimelineState and restores exactly,
// so a checkpointed serving run resumes bit-identical to an uninterrupted
// one.
type DeviceTimeline struct {
	cfg    DataflowConfig
	window int

	ctrlFree, gmmFree, ssdFree, lastResp int64

	// ring holds the response cycles of the last `window` admitted requests;
	// when full, ring[wpos] is the oldest outstanding response — the one that
	// must drain before the next request may enter the device.
	ring  []int64
	wpos  int
	count int

	issued uint64
	stalls uint64

	gmmBusy, ssdBusy, ctrlBusy, hiddenGMM int64
}

// TimelineState is the serialized cursor state of a DeviceTimeline. Window
// lists the outstanding response cycles oldest-first; every other field is a
// direct cursor or counter copy.
type TimelineState struct {
	CtrlFree int64 `json:"ctrl_free"`
	GMMFree  int64 `json:"gmm_free"`
	SSDFree  int64 `json:"ssd_free"`
	LastResp int64 `json:"last_resp"`

	Window []int64 `json:"window,omitempty"`

	Issued uint64 `json:"issued,omitempty"`
	Stalls uint64 `json:"stalls,omitempty"`

	GMMBusy         int64 `json:"gmm_busy,omitempty"`
	SSDBusy         int64 `json:"ssd_busy,omitempty"`
	CtrlBusy        int64 `json:"ctrl_busy,omitempty"`
	HiddenGMMCycles int64 `json:"hidden_gmm_cycles,omitempty"`
}

// NewDeviceTimeline builds an empty timeline for the given timing.
func NewDeviceTimeline(cfg DataflowConfig) (*DeviceTimeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	window := cfg.Outstanding
	if window <= 0 {
		window = 1
	}
	return &DeviceTimeline{cfg: cfg, window: window, ring: make([]int64, window)}, nil
}

// Config returns the timing the timeline was built with.
func (t *DeviceTimeline) Config() DataflowConfig { return t.cfg }

// Window returns the sanitized outstanding-request window size.
func (t *DeviceTimeline) Window() int { return t.window }

// Depth reports how many admitted requests are still outstanding at cycle c:
// responses later than c that already occupy the host window. It is the queue
// depth an arrival at cycle c observes, bounded by Window().
func (t *DeviceTimeline) Depth(c int64) int {
	depth := 0
	for i := 0; i < t.count; i++ {
		if t.ring[i] > c {
			depth++
		}
	}
	return depth
}

// Advance admits one annotated access arriving at the given cycle and returns
// its device-entry cycle (after any host-window wait), its response cycle,
// and whether the arrival was stalled by a full outstanding window. Arrivals
// must be fed in non-decreasing cycle order.
func (t *DeviceTimeline) Advance(ev AccessEvent, arrival int64) (entry, resp int64, stalled bool) {
	cfg := &t.cfg
	entry = arrival
	if t.count == t.window {
		if oldest := t.ring[t.wpos]; oldest > entry {
			entry = oldest
			stalled = true
			t.stalls++
		}
	}
	start := max64(entry, t.ctrlFree)
	tagDone := start + cfg.TagCompareCycles
	t.ctrlBusy += tagDone - start
	t.ctrlFree = tagDone

	switch {
	case ev.Hit:
		resp = tagDone + cfg.HitCycles
	default:
		gmmDone := tagDone
		if cfg.PolicyEnabled {
			gmmStart := max64(tagDone, t.gmmFree)
			gmmDone = gmmStart + cfg.GMM.InferenceCycles()
			t.gmmFree = gmmDone
			t.gmmBusy += cfg.GMM.InferenceCycles()
		}
		ssdKickoff := tagDone
		if cfg.PolicyEnabled && !cfg.Overlap {
			ssdKickoff = gmmDone
		}
		var ssdCycles int64
		switch {
		case ev.Bypassed && ev.Write:
			ssdCycles = cfg.SSDWriteCycles
		case ev.Bypassed:
			ssdCycles = cfg.SSDReadCycles
		default:
			ssdCycles = cfg.SSDReadCycles
			if ev.WriteBack {
				ssdCycles += cfg.SSDWriteCycles
			}
		}
		ssdStart := max64(ssdKickoff, t.ssdFree)
		ssdDone := ssdStart + ssdCycles
		t.ssdFree = ssdDone
		t.ssdBusy += ssdCycles

		if cfg.PolicyEnabled && cfg.Overlap {
			hidden := min64(gmmDone, ssdDone) - max64(tagDone, gmmDone-cfg.GMM.InferenceCycles())
			if hidden > 0 {
				t.hiddenGMM += hidden
			}
		}
		resp = max64(gmmDone, ssdDone) + cfg.HitCycles
	}
	if resp <= t.lastResp {
		resp = t.lastResp + 1
	}
	t.lastResp = resp

	t.ring[t.wpos] = resp
	t.wpos++
	if t.wpos == t.window {
		t.wpos = 0
	}
	if t.count < t.window {
		t.count++
	}
	t.issued++
	return entry, resp, stalled
}

// WallCycles is the completion cycle of the latest response — the timeline's
// wall clock, against which the busy counters are utilization fractions.
func (t *DeviceTimeline) WallCycles() int64 { return t.lastResp }

// Busy returns the cumulative per-module busy cycles (policy engine, SSD
// emulator, controller) and the policy-engine cycles hidden behind SSD
// access.
func (t *DeviceTimeline) Busy() (gmm, ssd, ctrl, hidden int64) {
	return t.gmmBusy, t.ssdBusy, t.ctrlBusy, t.hiddenGMM
}

// Issued returns the number of admitted requests; Stalls the number whose
// entry waited on a full outstanding window.
func (t *DeviceTimeline) Issued() uint64 { return t.issued }
func (t *DeviceTimeline) Stalls() uint64 { return t.stalls }

// State exports the full cursor state.
func (t *DeviceTimeline) State() TimelineState {
	st := TimelineState{
		CtrlFree:        t.ctrlFree,
		GMMFree:         t.gmmFree,
		SSDFree:         t.ssdFree,
		LastResp:        t.lastResp,
		Issued:          t.issued,
		Stalls:          t.stalls,
		GMMBusy:         t.gmmBusy,
		SSDBusy:         t.ssdBusy,
		CtrlBusy:        t.ctrlBusy,
		HiddenGMMCycles: t.hiddenGMM,
	}
	if t.count > 0 {
		st.Window = make([]int64, 0, t.count)
		// Oldest-first: when full the oldest sits at wpos; otherwise the
		// ring never wrapped and starts at index 0.
		if t.count == t.window {
			st.Window = append(st.Window, t.ring[t.wpos:]...)
			st.Window = append(st.Window, t.ring[:t.wpos]...)
		} else {
			st.Window = append(st.Window, t.ring[:t.count]...)
		}
	}
	return st
}

// RestoreState loads an exported cursor state into the timeline. The window
// occupancy must fit the configured outstanding window.
func (t *DeviceTimeline) RestoreState(st TimelineState) error {
	if len(st.Window) > t.window {
		return fmt.Errorf("fpga: timeline state has %d outstanding responses, window is %d",
			len(st.Window), t.window)
	}
	t.ctrlFree = st.CtrlFree
	t.gmmFree = st.GMMFree
	t.ssdFree = st.SSDFree
	t.lastResp = st.LastResp
	t.issued = st.Issued
	t.stalls = st.Stalls
	t.gmmBusy = st.GMMBusy
	t.ssdBusy = st.SSDBusy
	t.ctrlBusy = st.CtrlBusy
	t.hiddenGMM = st.HiddenGMMCycles
	for i := range t.ring {
		t.ring[i] = 0
	}
	copy(t.ring, st.Window)
	t.count = len(st.Window)
	t.wpos = t.count
	if t.wpos == t.window {
		t.wpos = 0
	}
	return nil
}
