// Package policy implements the cache policy engines evaluated in the
// paper: the LRU baseline, the three GMM strategies of Fig. 6 (smart caching
// only, smart eviction only, and both combined), an LSTM-based engine
// adapter, and additional classic references (FIFO, LFU, Random) plus the
// Belady oracle used as an upper bound in ablation studies.
package policy

import (
	"math/rand"

	"repro/internal/cache"
)

// base carries the geometry shared by the classic per-block-metadata
// policies.
type base struct {
	numSets, ways int
}

func (b *base) Attach(numSets, ways int) {
	b.numSets, b.ways = numSets, ways
}

// meta allocates a [numSets][ways] metadata table.
func (b *base) meta() [][]uint64 {
	m := make([][]uint64, b.numSets)
	for i := range m {
		m[i] = make([]uint64, b.ways)
	}
	return m
}

// LRU is the Least Recently Used baseline the paper compares against: every
// missed page is admitted and the least recently touched block is evicted.
type LRU struct {
	base
	lastUse [][]uint64
}

// NewLRU returns an LRU policy engine.
func NewLRU() *LRU { return &LRU{} }

// Name implements cache.Policy.
func (p *LRU) Name() string { return "lru" }

// Attach implements cache.Policy.
func (p *LRU) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.lastUse = p.meta()
}

// OnAccess implements cache.Policy.
func (p *LRU) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *LRU) OnHit(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
}

// Admit implements cache.Policy; LRU admits everything.
func (p *LRU) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *LRU) Victim(setIdx int, blocks []cache.BlockView) int {
	best, bestUse := 0, p.lastUse[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.lastUse[setIdx][w] < bestUse {
			best, bestUse = w, p.lastUse[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *LRU) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *LRU) OnInsert(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
}

// FIFO evicts the oldest-inserted block regardless of reuse.
type FIFO struct {
	base
	inserted [][]uint64
}

// NewFIFO returns a FIFO policy engine.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements cache.Policy.
func (p *FIFO) Name() string { return "fifo" }

// Attach implements cache.Policy.
func (p *FIFO) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.inserted = p.meta()
}

// OnAccess implements cache.Policy.
func (p *FIFO) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *FIFO) OnHit(int, int, cache.Request) {}

// Admit implements cache.Policy.
func (p *FIFO) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *FIFO) Victim(setIdx int, blocks []cache.BlockView) int {
	best, bestIns := 0, p.inserted[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.inserted[setIdx][w] < bestIns {
			best, bestIns = w, p.inserted[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *FIFO) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *FIFO) OnInsert(setIdx, way int, req cache.Request) {
	p.inserted[setIdx][way] = req.Seq
}

// LFU evicts the block with the fewest accesses since insertion.
type LFU struct {
	base
	freq [][]uint64
}

// NewLFU returns an LFU policy engine.
func NewLFU() *LFU { return &LFU{} }

// Name implements cache.Policy.
func (p *LFU) Name() string { return "lfu" }

// Attach implements cache.Policy.
func (p *LFU) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.freq = p.meta()
}

// OnAccess implements cache.Policy.
func (p *LFU) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *LFU) OnHit(setIdx, way int, req cache.Request) {
	p.freq[setIdx][way]++
}

// Admit implements cache.Policy.
func (p *LFU) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *LFU) Victim(setIdx int, blocks []cache.BlockView) int {
	best, bestF := 0, p.freq[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.freq[setIdx][w] < bestF {
			best, bestF = w, p.freq[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *LFU) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *LFU) OnInsert(setIdx, way int, req cache.Request) {
	p.freq[setIdx][way] = 1
}

// Random evicts a uniformly random way; the floor any learned policy must
// beat.
type Random struct {
	base
	rng *rand.Rand
}

// NewRandom returns a random-eviction policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements cache.Policy.
func (p *Random) Name() string { return "random" }

// OnAccess implements cache.Policy.
func (p *Random) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *Random) OnHit(int, int, cache.Request) {}

// Admit implements cache.Policy.
func (p *Random) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *Random) Victim(setIdx int, blocks []cache.BlockView) int {
	return p.rng.Intn(len(blocks))
}

// OnEvict implements cache.Policy.
func (p *Random) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *Random) OnInsert(int, int, cache.Request) {}
