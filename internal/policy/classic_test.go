package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// tinyCache builds a 1-set, 4-way cache so eviction order is easy to reason
// about (all pages map to set 0 when page % 1 == 0).
func tinyCache(t *testing.T, p cache.Policy) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{SizeBytes: 4 * 4096, BlockBytes: 4096, Ways: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func access(c *cache.Cache, pages ...uint64) {
	for _, p := range pages {
		c.Access(p, false)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := tinyCache(t, NewLRU())
	access(c, 1, 2, 3, 4) // fill
	access(c, 1, 2, 3)    // page 4 becomes LRU
	res := c.Access(5, false)
	if !res.Evicted || res.VictimPage != 4 {
		t.Errorf("LRU evicted %d, want 4 (result %+v)", res.VictimPage, res)
	}
}

func TestLRUHitRefreshes(t *testing.T) {
	c := tinyCache(t, NewLRU())
	access(c, 1, 2, 3, 4)
	access(c, 1) // refresh 1; LRU is now 2
	res := c.Access(6, false)
	if res.VictimPage != 2 {
		t.Errorf("victim = %d, want 2", res.VictimPage)
	}
}

func TestFIFOEvictionIgnoresHits(t *testing.T) {
	c := tinyCache(t, NewFIFO())
	access(c, 1, 2, 3, 4)
	access(c, 1, 1, 1) // hits must not matter
	res := c.Access(5, false)
	if res.VictimPage != 1 {
		t.Errorf("FIFO evicted %d, want 1", res.VictimPage)
	}
}

func TestLFUEvictsColdest(t *testing.T) {
	c := tinyCache(t, NewLFU())
	access(c, 1, 2, 3, 4)
	access(c, 1, 1, 2, 2, 3) // page 4 has lowest frequency
	res := c.Access(5, false)
	if res.VictimPage != 4 {
		t.Errorf("LFU evicted %d, want 4", res.VictimPage)
	}
}

func TestLFUResetOnInsert(t *testing.T) {
	c := tinyCache(t, NewLFU())
	access(c, 1, 2, 3, 4)
	access(c, 1, 1, 2, 2, 3, 3)
	access(c, 5) // evicts 4; page 5 enters with freq 1
	access(c, 4) // evicts 5 (lowest freq), page 4 enters fresh
	if !c.Contains(4) {
		t.Error("page 4 not reinserted")
	}
	if c.Contains(5) {
		t.Error("page 5 should have been evicted as coldest")
	}
}

func TestRandomStaysInBounds(t *testing.T) {
	c := tinyCache(t, NewRandom(1))
	for p := uint64(0); p < 100; p++ {
		c.Access(p, false)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if c.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4", c.Occupancy())
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]cache.Policy{
		"lru":    NewLRU(),
		"fifo":   NewFIFO(),
		"lfu":    NewLFU(),
		"random": NewRandom(0),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestBeladyOptimalOnKnownSequence(t *testing.T) {
	// Classic example where Belady beats LRU. Sequence on a 1-set cache:
	// working set alternates so the furthest-future page differs from LRU.
	seq := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	tr := make(trace.Trace, len(seq))
	for i, p := range seq {
		tr[i] = trace.Record{Op: trace.Read, Addr: p << trace.PageShift}
	}
	tr.Stamp()

	run := func(p cache.Policy) cache.Stats {
		c := tinyCache(t, p)
		for _, r := range tr {
			c.Access(r.Page(), false)
		}
		return c.Stats()
	}
	beladyStats := run(NewBelady(tr, false))
	lruStats := run(NewLRU())
	if beladyStats.Misses > lruStats.Misses {
		t.Errorf("Belady misses %d > LRU misses %d", beladyStats.Misses, lruStats.Misses)
	}
}

func TestBeladyNeverRecursEvictedFirst(t *testing.T) {
	// Page 9 never recurs; it must be the victim.
	seq := []uint64{1, 2, 3, 9, 1, 2, 3, 4, 1, 2, 3, 4}
	tr := make(trace.Trace, len(seq))
	for i, p := range seq {
		tr[i] = trace.Record{Op: trace.Read, Addr: p << trace.PageShift}
	}
	tr.Stamp()
	c := tinyCache(t, NewBelady(tr, false))
	for i, r := range tr {
		res := c.Access(r.Page(), false)
		if res.Evicted && res.VictimPage != 9 {
			t.Errorf("access %d evicted %d, want 9", i, res.VictimPage)
		}
	}
}

func TestBeladyBypassSkipsNonRecurring(t *testing.T) {
	seq := []uint64{1, 2, 3, 4, 99, 1, 2, 3, 4} // 99 never recurs
	tr := make(trace.Trace, len(seq))
	for i, p := range seq {
		tr[i] = trace.Record{Op: trace.Read, Addr: p << trace.PageShift}
	}
	tr.Stamp()
	c := tinyCache(t, NewBelady(tr, true))
	for _, r := range tr {
		c.Access(r.Page(), false)
	}
	st := c.Stats()
	// Misses: 4 cold + 99 = 5; pages 1..4 must all hit on the second round.
	if st.Misses != 5 {
		t.Errorf("misses = %d, want 5", st.Misses)
	}
	if st.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", st.Bypasses)
	}
}

func TestBeladyBypassName(t *testing.T) {
	if NewBelady(nil, true).Name() != "belady-bypass" {
		t.Error("bypass name wrong")
	}
	if NewBelady(nil, false).Name() != "belady" {
		t.Error("plain name wrong")
	}
}

func TestBeladyBeyondPrecomputedTrace(t *testing.T) {
	tr := trace.Trace{{Op: trace.Read, Addr: 1 << trace.PageShift}}
	tr.Stamp()
	c := tinyCache(t, NewBelady(tr, false))
	// Drive more requests than the precomputed trace; must not panic.
	for p := uint64(0); p < 20; p++ {
		c.Access(p, false)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
