package policy

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/linalg"
	"repro/internal/trace"
)

// stubScorer scores a configured set of hot pages high and everything else
// low, with normalization mapping page p to p/1000.
type stubScorer struct {
	hot map[int]bool
}

func (s stubScorer) ScorePageTime(page, _ float64) float64 {
	if s.hot[int(page*1000+0.5)] {
		return 1.0
	}
	return 0.01
}

func stubNorm() trace.Normalizer {
	return trace.Normalizer{PageScale: 1.0 / 1000, TimeScale: 1}
}

func newTestGMM(mode GMMMode, hot ...int) *GMM {
	hs := map[int]bool{}
	for _, h := range hot {
		hs[h] = true
	}
	return NewGMM(GMMConfig{
		Scorer:     stubScorer{hot: hs},
		Normalizer: stubNorm(),
		Transform:  trace.DefaultTransformConfig(),
		Threshold:  0.5,
		Mode:       mode,
	})
}

func TestGMMNames(t *testing.T) {
	if newTestGMM(GMMCachingOnly).Name() != "gmm-caching-only" {
		t.Error("caching-only name wrong")
	}
	if newTestGMM(GMMEvictionOnly).Name() != "gmm-eviction-only" {
		t.Error("eviction-only name wrong")
	}
	p := newTestGMM(GMMCachingEviction)
	if p.Name() != "gmm-caching-eviction" {
		t.Error("combined name wrong")
	}
	if p.Mode() != GMMCachingEviction {
		t.Error("Mode accessor wrong")
	}
	if p.Threshold() != 0.5 {
		t.Error("Threshold accessor wrong")
	}
}

func TestGMMAdmissionFiltersColdPages(t *testing.T) {
	p := newTestGMM(GMMCachingEviction, 1, 2)
	c := tinyCache(t, p)
	c.Access(1, false)  // hot: admitted
	c.Access(50, false) // cold: bypassed
	if !c.Contains(1) {
		t.Error("hot page not cached")
	}
	if c.Contains(50) {
		t.Error("cold page cached despite low score")
	}
	st := c.Stats()
	if st.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", st.Bypasses)
	}
}

func TestGMMEvictionOnlyAdmitsEverything(t *testing.T) {
	p := newTestGMM(GMMEvictionOnly, 1, 2, 3)
	c := tinyCache(t, p)
	c.Access(50, false) // cold but admitted in eviction-only mode
	if !c.Contains(50) {
		t.Error("eviction-only mode must admit cold pages")
	}
}

func TestGMMEvictsLowestScore(t *testing.T) {
	// Eviction-only mode admits everything, so the cold page 4 enters with
	// a low stored score and must be the next victim.
	pe := newTestGMM(GMMEvictionOnly, 1, 2, 3) // page 4 cold
	ce := tinyCache(t, pe)
	access(ce, 1, 2, 3, 4) // 4 enters with low score
	res := ce.Access(5, false)
	if !res.Evicted || res.VictimPage != 4 {
		t.Errorf("victim = %+v, want page 4 (lowest score)", res)
	}
}

func TestGMMCachingOnlyUsesLRUEviction(t *testing.T) {
	// All pages hot so admission always passes; eviction must follow LRU.
	p := newTestGMM(GMMCachingOnly, 1, 2, 3, 4, 5, 6)
	c := tinyCache(t, p)
	access(c, 1, 2, 3, 4)
	access(c, 1) // 2 becomes LRU
	res := c.Access(5, false)
	if res.VictimPage != 2 {
		t.Errorf("victim = %d, want 2 (LRU fallback)", res.VictimPage)
	}
}

func TestGMMScoreMemoizedPerAccess(t *testing.T) {
	// The score computed during Admit must be reused by OnInsert; a counting
	// scorer checks we run exactly one inference per miss.
	cs := &countingScorer{}
	p := NewGMM(GMMConfig{
		Scorer:     cs,
		Normalizer: stubNorm(),
		Transform:  trace.DefaultTransformConfig(),
		Threshold:  0,
		Mode:       GMMCachingEviction,
	})
	c := tinyCache(t, p)
	c.Access(1, false)
	c.Access(2, false)
	if cs.calls != 2 {
		t.Errorf("scorer called %d times for 2 misses, want 2", cs.calls)
	}
	c.Access(1, false) // hit: no inference
	if cs.calls != 2 {
		t.Errorf("hit triggered inference (calls = %d)", cs.calls)
	}
}

type countingScorer struct{ calls int }

func (c *countingScorer) ScorePageTime(_, _ float64) float64 {
	c.calls++
	return 1
}

func TestGMMWithRealModel(t *testing.T) {
	// Train a real GMM on a two-cluster trace and check the policy admits
	// hot-cluster pages and rejects cold ones.
	var tr trace.Trace
	for i := 0; i < 30000; i++ {
		page := uint64(100 + i%40) // hot band: pages 100..139
		tr = append(tr, trace.Record{Op: trace.Read, Addr: page << trace.PageShift})
	}
	tr.Stamp()
	res, norm, err := gmm.FitTrace(tr, trace.DefaultTransformConfig(),
		gmm.TrainConfig{K: 4, MaxIters: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	samples := norm.ApplyAll(trace.Preprocess(tr, trace.DefaultTransformConfig()))
	th := CalibrateThreshold(res.Model, samples, 0.05)
	p := NewGMM(GMMConfig{
		Scorer:     res.Model,
		Normalizer: norm,
		Transform:  trace.DefaultTransformConfig(),
		Threshold:  th,
		Mode:       GMMCachingEviction,
	})
	c, err := cache.New(cache.Config{SizeBytes: 64 * 4096, BlockBytes: 4096, Ways: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(120, false) // hot band page
	if !c.Contains(120) {
		t.Error("hot page rejected by trained model")
	}
	c.Access(100000, false) // far outside the trained distribution
	if c.Contains(100000) {
		t.Error("distant cold page admitted")
	}
}

func TestCalibrateThreshold(t *testing.T) {
	m, err := gmm.New([]gmm.Component{
		{Weight: 1, Mean: linalg.V2(0.5, 0.5), Cov: linalg.SymDiag(0.01, 0.01)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var samples []trace.Sample
	for i := 0; i < 1000; i++ {
		samples = append(samples, trace.Sample{Page: 0.5, Timestamp: 0.5})
	}
	th := CalibrateThreshold(m, samples, 0.1)
	want := m.ScorePageTime(0.5, 0.5)
	if math.Abs(th-want) > 1e-9 {
		t.Errorf("threshold = %v, want %v for identical samples", th, want)
	}
	if CalibrateThreshold(m, nil, 0.1) != 0 {
		t.Error("empty samples should give 0")
	}
	// Percentile clamping.
	if CalibrateThreshold(m, samples, -5) != want {
		t.Error("negative pct should clamp to 0")
	}
	if CalibrateThreshold(m, samples, 5) != want {
		t.Error("pct > 1 should clamp to 1")
	}
}

func TestCalibrateThresholdOrdering(t *testing.T) {
	m, err := gmm.New([]gmm.Component{
		{Weight: 1, Mean: linalg.V2(0, 0), Cov: linalg.SymDiag(1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Samples at increasing distance from the mean → decreasing scores.
	var samples []trace.Sample
	for i := 0; i < 100; i++ {
		samples = append(samples, trace.Sample{Page: float64(i) * 0.05, Timestamp: 0})
	}
	lo := CalibrateThreshold(m, samples, 0.1)
	hi := CalibrateThreshold(m, samples, 0.9)
	if lo >= hi {
		t.Errorf("threshold not monotone in pct: %v >= %v", lo, hi)
	}
}

func TestGMMTimestampAdvancesOnHits(t *testing.T) {
	// Algorithm 1's clock counts every request, hit or miss. After 32
	// requests (LenWindow) the timestamp must step; verify through a scorer
	// that records the timestamp it sees.
	rec := &timeRecordingScorer{}
	p := NewGMM(GMMConfig{
		Scorer:     rec,
		Normalizer: trace.Normalizer{PageScale: 1, TimeScale: 1},
		Transform:  trace.TransformConfig{LenWindow: 4, LenAccessShot: 100},
		Threshold:  -1,
		Mode:       GMMCachingEviction,
	})
	c := tinyCache(t, p)
	c.Access(1, false) // miss at window 0
	access(c, 1, 1, 1) // hits advance the clock (requests 2-4)
	c.Access(2, false) // 5th request → window 1
	if len(rec.times) != 2 {
		t.Fatalf("scorer saw %d inferences, want 2", len(rec.times))
	}
	if rec.times[0] != 0 || rec.times[1] != 1 {
		t.Errorf("timestamps = %v, want [0 1]", rec.times)
	}
}

type timeRecordingScorer struct{ times []float64 }

func (s *timeRecordingScorer) ScorePageTime(_, ts float64) float64 {
	s.times = append(s.times, ts)
	return 1
}

func TestGMMProvideScoreOverridesInference(t *testing.T) {
	// No hot pages: live inference would score 0.01, below the 0.5 cutoff.
	p := newTestGMM(GMMCachingEviction)
	p.Attach(4, 2)

	// Provided score above threshold: admitted despite cold inference score.
	p.ProvideScore(0.9)
	p.OnAccess(cache.Request{Page: 7, Seq: 0})
	if !p.Admit(cache.Request{Page: 7, Seq: 0}) {
		t.Fatal("provided score 0.9 not admitted")
	}
	// The provided score is what OnInsert stores as the eviction key.
	p.OnInsert(int(7%4), 0, cache.Request{Page: 7, Seq: 0})
	if got := p.scores[7%4][0]; got != 0.9 {
		t.Fatalf("stored score = %v, want provided 0.9", got)
	}

	// Slot consumed: the next access falls back to live inference (cold).
	p.OnAccess(cache.Request{Page: 8, Seq: 1})
	if p.Admit(cache.Request{Page: 8, Seq: 1}) {
		t.Fatal("stale provided score leaked into the next access")
	}

	// Provided below threshold: bypassed.
	p.ProvideScore(0.1)
	p.OnAccess(cache.Request{Page: 9, Seq: 2})
	if p.Admit(cache.Request{Page: 9, Seq: 2}) {
		t.Fatal("provided score 0.1 admitted")
	}
}

func TestGMMSetThreshold(t *testing.T) {
	p := newTestGMM(GMMCachingEviction, 3)
	p.Attach(4, 2)
	if p.Threshold() != 0.5 {
		t.Fatalf("initial threshold = %v", p.Threshold())
	}
	// Raise the cutoff above the hot score: now even hot pages bypass.
	p.SetThreshold(2)
	p.OnAccess(cache.Request{Page: 3, Seq: 0})
	if p.Admit(cache.Request{Page: 3, Seq: 0}) {
		t.Fatal("hot page admitted past raised threshold")
	}
	p.SetThreshold(0.5)
	p.OnAccess(cache.Request{Page: 3, Seq: 1})
	if !p.Admit(cache.Request{Page: 3, Seq: 1}) {
		t.Fatal("hot page rejected after restoring threshold")
	}
}
