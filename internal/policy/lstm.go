package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/lstm"
	"repro/internal/trace"
)

// LSTMPolicy adapts the Table 2 LSTM baseline into a cache policy engine in
// the DeepCache/Glider mold: it maintains a sliding window of the last
// SeqLen normalized (page, timestamp) inputs and, on each miss, runs one
// sequence inference to predict the requested page's future access
// frequency. The prediction substitutes for the GMM score in both the
// admission decision and the per-block eviction key, so the two engines are
// compared under identical cache mechanics — exactly the paper's framing,
// where the LSTM's problem is not decision quality but the cost of every
// one of those inferences (46.3 ms vs 3 µs in hardware).
type LSTMPolicy struct {
	base
	net       *lstm.Network
	norm      trace.Normalizer
	tt        *trace.TimestampTransformer
	threshold float64
	evict     bool // use predictions for eviction
	admit     bool // use predictions for admission

	window  [][]float64 // ring of the last SeqLen inputs
	wpos    int
	wcount  int
	seqBuf  [][]float64
	scores  [][]float64
	lastUse [][]uint64

	curScore float64
	curValid bool
	curTime  int

	// Inferences counts sequence evaluations, the quantity the hardware
	// cost model multiplies by 46.3 ms.
	Inferences uint64
}

// LSTMPolicyConfig assembles the adapter.
type LSTMPolicyConfig struct {
	// Net is the trained (or untrained, for cost studies) network.
	Net *lstm.Network
	// Normalizer maps raw inputs into the network's training coordinates.
	Normalizer trace.Normalizer
	// Transform supplies the Algorithm 1 clock.
	Transform trace.TransformConfig
	// Threshold is the admission cutoff on the predicted frequency.
	Threshold float64
	// Admission / Eviction select which decisions use the prediction;
	// disabled decisions fall back to LRU semantics.
	Admission, Eviction bool
}

// NewLSTMPolicy builds the adapter.
func NewLSTMPolicy(cfg LSTMPolicyConfig) *LSTMPolicy {
	seqLen := cfg.Net.Config().SeqLen
	p := &LSTMPolicy{
		net:       cfg.Net,
		norm:      cfg.Normalizer,
		tt:        trace.NewTimestampTransformer(cfg.Transform),
		threshold: cfg.Threshold,
		admit:     cfg.Admission,
		evict:     cfg.Eviction,
		window:    make([][]float64, seqLen),
		seqBuf:    make([][]float64, seqLen),
	}
	for i := range p.window {
		p.window[i] = []float64{0, 0}
	}
	return p
}

// Name implements cache.Policy.
func (p *LSTMPolicy) Name() string { return "lstm" }

// Attach implements cache.Policy.
func (p *LSTMPolicy) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.scores = make([][]float64, numSets)
	for i := range p.scores {
		p.scores[i] = make([]float64, ways)
	}
	p.lastUse = p.meta()
}

// OnAccess implements cache.Policy: every request advances the clock and
// shifts the observation window, mirroring the GMM engine's OnAccess.
func (p *LSTMPolicy) OnAccess(req cache.Request) {
	p.curTime = p.tt.Next()
	np, nt := p.norm.ApplyPageTime(req.Page, p.curTime)
	p.window[p.wpos] = []float64{np, nt}
	p.wpos = (p.wpos + 1) % len(p.window)
	if p.wcount < len(p.window) {
		p.wcount++
	}
	p.curValid = false
}

// score runs one sequence inference over the current window.
func (p *LSTMPolicy) score() float64 {
	if p.curValid {
		return p.curScore
	}
	// Assemble the window in chronological order.
	n := len(p.window)
	for i := 0; i < n; i++ {
		p.seqBuf[i] = p.window[(p.wpos+i)%n]
	}
	out, err := p.net.Forward(p.seqBuf)
	if err != nil {
		out = 0
	}
	p.Inferences++
	p.curScore = out
	p.curValid = true
	return out
}

// OnHit implements cache.Policy.
func (p *LSTMPolicy) OnHit(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
}

// Admit implements cache.Policy.
func (p *LSTMPolicy) Admit(req cache.Request) bool {
	if !p.admit {
		if p.evict {
			p.score()
		}
		return true
	}
	return p.score() >= p.threshold
}

// Victim implements cache.Policy.
func (p *LSTMPolicy) Victim(setIdx int, blocks []cache.BlockView) int {
	if !p.evict {
		best, bestUse := 0, p.lastUse[setIdx][0]
		for w := 1; w < len(blocks); w++ {
			if p.lastUse[setIdx][w] < bestUse {
				best, bestUse = w, p.lastUse[setIdx][w]
			}
		}
		return best
	}
	best, bestScore := 0, p.scores[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.scores[setIdx][w] < bestScore {
			best, bestScore = w, p.scores[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *LSTMPolicy) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *LSTMPolicy) OnInsert(setIdx, way int, req cache.Request) {
	if p.evict {
		p.scores[setIdx][way] = p.score()
	}
	p.lastUse[setIdx][way] = req.Seq
}

// LSTMPolicyState is the policy's full mutable state minus the network
// weights: the observation window ring, the per-block score and recency
// tables, the memoized current score, and the Algorithm 1 clock. Weights are
// excluded deliberately — a shadow policy retrains them deterministically
// from the spec, so checkpoints stay small.
type LSTMPolicyState struct {
	Window     [][]float64 `json:"window"`
	WPos       int         `json:"wpos"`
	WCount     int         `json:"wcount"`
	Scores     [][]float64 `json:"scores"`
	LastUse    [][]uint64  `json:"last_use"`
	CurScore   float64     `json:"cur_score,omitempty"`
	CurValid   bool        `json:"cur_valid,omitempty"`
	CurTime    int         `json:"cur_time,omitempty"`
	Inferences uint64      `json:"inferences,omitempty"`
	// ClockTimestamp/ClockIndex are the timestamp transformer's cursor.
	ClockTimestamp int `json:"clock_timestamp,omitempty"`
	ClockIndex     int `json:"clock_index,omitempty"`
}

// State exports the policy's mutable state.
func (p *LSTMPolicy) State() LSTMPolicyState {
	s := LSTMPolicyState{
		Window:     make([][]float64, len(p.window)),
		WPos:       p.wpos,
		WCount:     p.wcount,
		Scores:     make([][]float64, len(p.scores)),
		LastUse:    make([][]uint64, len(p.lastUse)),
		CurScore:   p.curScore,
		CurValid:   p.curValid,
		CurTime:    p.curTime,
		Inferences: p.Inferences,
	}
	s.ClockTimestamp, s.ClockIndex = p.tt.State()
	for i := range p.window {
		s.Window[i] = append([]float64(nil), p.window[i]...)
	}
	for i := range p.scores {
		s.Scores[i] = append([]float64(nil), p.scores[i]...)
	}
	for i := range p.lastUse {
		s.LastUse[i] = append([]uint64(nil), p.lastUse[i]...)
	}
	return s
}

// RestoreState rewinds the policy to an exported state. The receiver must
// have been built with the same network shape and attached to the same cache
// geometry as the exporter.
func (p *LSTMPolicy) RestoreState(s LSTMPolicyState) error {
	if len(s.Window) != len(p.window) {
		return fmt.Errorf("policy: lstm state window length %d, want %d", len(s.Window), len(p.window))
	}
	in := p.net.Config().InputDim
	for i, row := range s.Window {
		if len(row) != in {
			return fmt.Errorf("policy: lstm state window row %d has %d dims, want %d", i, len(row), in)
		}
	}
	if s.WPos < 0 || s.WPos >= len(p.window) || s.WCount < 0 || s.WCount > len(p.window) {
		return fmt.Errorf("policy: lstm state window cursor (%d, %d) outside ring of %d", s.WPos, s.WCount, len(p.window))
	}
	if len(s.Scores) != len(p.scores) || len(s.LastUse) != len(p.lastUse) {
		return fmt.Errorf("policy: lstm state has %d/%d sets, policy has %d", len(s.Scores), len(s.LastUse), len(p.scores))
	}
	for i := range s.Scores {
		if len(s.Scores[i]) != len(p.scores[i]) || len(s.LastUse[i]) != len(p.lastUse[i]) {
			return fmt.Errorf("policy: lstm state set %d way count mismatch", i)
		}
	}
	if err := p.tt.RestoreState(s.ClockTimestamp, s.ClockIndex); err != nil {
		return err
	}
	for i := range s.Window {
		p.window[i] = append([]float64(nil), s.Window[i]...)
	}
	for i := range s.Scores {
		copy(p.scores[i], s.Scores[i])
		copy(p.lastUse[i], s.LastUse[i])
	}
	p.wpos, p.wcount = s.WPos, s.WCount
	p.curScore, p.curValid, p.curTime = s.CurScore, s.CurValid, s.CurTime
	p.Inferences = s.Inferences
	return nil
}

// TrainLSTMOnTrace fits the network to predict page access frequency from
// the preprocessed trace: for each position, the input is the window of
// SeqLen normalized samples ending there and the target is the page's
// relative access frequency over the trace. maxExamples bounds the training
// set (BPTT over a 3x128 network is expensive — the paper's point).
func TrainLSTMOnTrace(net *lstm.Network, t trace.Trace, tcfg trace.TransformConfig, maxExamples int, epochs int) (*lstm.TrainResult, trace.Normalizer, error) {
	samples := trace.Preprocess(t, tcfg)
	norm := trace.FitNormalizer(samples)
	normed := norm.ApplyAll(samples)

	// Per-page frequency as the regression target, normalized by the
	// hottest page.
	freq := make(map[float64]float64, 1024)
	for _, s := range samples {
		freq[s.Page]++
	}
	maxF := 1.0
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}

	seqLen := net.Config().SeqLen
	if maxExamples <= 0 {
		maxExamples = 512
	}
	stride := 1
	if avail := len(normed) - seqLen; avail > maxExamples {
		stride = avail / maxExamples
	}
	var ex []lstm.Sample
	for i := seqLen; i < len(normed) && len(ex) < maxExamples; i += stride {
		seq := make([][]float64, seqLen)
		for j := 0; j < seqLen; j++ {
			s := normed[i-seqLen+j]
			seq[j] = []float64{s.Page, s.Timestamp}
		}
		ex = append(ex, lstm.Sample{
			Seq:    seq,
			Target: freq[samples[i-1].Page] / maxF,
		})
	}
	cfg := lstm.DefaultTrainConfig()
	if epochs > 0 {
		cfg.Epochs = epochs
	}
	res, err := net.Train(ex, cfg)
	return res, norm, err
}
