package policy

import (
	"math"

	"repro/internal/cache"
	"repro/internal/trace"
)

// Belady is the clairvoyant MIN/OPT replacement policy: evict the block
// whose next use lies furthest in the future. It needs the whole request
// sequence up front, so it is an offline oracle — the upper bound the
// ablation benches compare learned policies against.
type Belady struct {
	base
	// nextUse[i] is the arrival index of the next access to the same page
	// after request i, or maxUint64 when the page never recurs.
	nextUse []uint64
	// blockNext[set][way] is the next-use index of the resident page.
	blockNext [][]uint64
	cur       uint64
	// Bypass admits a missed page only when its next use precedes the
	// latest next use in its set, the admission-aware variant of OPT.
	Bypass bool
}

const never = math.MaxUint64

// NewBelady precomputes next-use chains for the given trace. The cache must
// then be driven with exactly that trace, in order.
func NewBelady(t trace.Trace, bypass bool) *Belady {
	next := make([]uint64, len(t))
	last := make(map[uint64]uint64, len(t)/4)
	for i := len(t) - 1; i >= 0; i-- {
		page := t[i].Page()
		if j, ok := last[page]; ok {
			next[i] = j
		} else {
			next[i] = never
		}
		last[page] = uint64(i)
	}
	return &Belady{nextUse: next, Bypass: bypass}
}

// Name implements cache.Policy.
func (p *Belady) Name() string {
	if p.Bypass {
		return "belady-bypass"
	}
	return "belady"
}

// Attach implements cache.Policy.
func (p *Belady) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.blockNext = p.meta()
	for si := range p.blockNext {
		for w := range p.blockNext[si] {
			p.blockNext[si][w] = never
		}
	}
}

// OnAccess implements cache.Policy; it records the current request's
// next-use distance for use by Admit/OnInsert.
func (p *Belady) OnAccess(req cache.Request) {
	if int(req.Seq) < len(p.nextUse) {
		p.cur = p.nextUse[req.Seq]
	} else {
		p.cur = never
	}
}

// OnHit implements cache.Policy.
func (p *Belady) OnHit(setIdx, way int, req cache.Request) {
	p.blockNext[setIdx][way] = p.cur
}

// Admit implements cache.Policy.
func (p *Belady) Admit(req cache.Request) bool {
	if !p.Bypass {
		return true
	}
	// Pages that never recur are pure pollution; skip them.
	return p.cur != never
}

// Victim implements cache.Policy: furthest next use loses.
func (p *Belady) Victim(setIdx int, blocks []cache.BlockView) int {
	best, bestNext := 0, p.blockNext[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.blockNext[setIdx][w] > bestNext {
			best, bestNext = w, p.blockNext[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *Belady) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *Belady) OnInsert(setIdx, way int, req cache.Request) {
	p.blockNext[setIdx][way] = p.cur
}
