package policy

import "repro/internal/cache"

// This file adds the classic set-associative replacement policies beyond
// the paper's LRU baseline — CLOCK (second chance), SLRU (segmented LRU)
// and SRRIP (static re-reference interval prediction) — so the policy
// comparison can place the GMM engine against the standard hardware-cache
// repertoire, not only against LRU.

// Clock implements the second-chance algorithm per set: a reference bit per
// way and a rotating hand; the first block with a clear bit is evicted,
// set bits are cleared as the hand passes.
type Clock struct {
	base
	ref  [][]bool
	hand []int
}

// NewClock returns a CLOCK policy engine.
func NewClock() *Clock { return &Clock{} }

// Name implements cache.Policy.
func (p *Clock) Name() string { return "clock" }

// Attach implements cache.Policy.
func (p *Clock) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.ref = make([][]bool, numSets)
	for i := range p.ref {
		p.ref[i] = make([]bool, ways)
	}
	p.hand = make([]int, numSets)
}

// OnAccess implements cache.Policy.
func (p *Clock) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *Clock) OnHit(setIdx, way int, _ cache.Request) {
	p.ref[setIdx][way] = true
}

// Admit implements cache.Policy.
func (p *Clock) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *Clock) Victim(setIdx int, blocks []cache.BlockView) int {
	refs := p.ref[setIdx]
	hand := p.hand[setIdx]
	// At most two sweeps: the first clears bits, so the second must find a
	// clear one.
	for i := 0; i < 2*len(blocks); i++ {
		w := (hand + i) % len(blocks)
		if !refs[w] {
			p.hand[setIdx] = (w + 1) % len(blocks)
			return w
		}
		refs[w] = false
	}
	return hand // unreachable: all bits were cleared in sweep one
}

// OnEvict implements cache.Policy.
func (p *Clock) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *Clock) OnInsert(setIdx, way int, _ cache.Request) {
	// New blocks start without a second chance, as in classic CLOCK.
	p.ref[setIdx][way] = false
}

// SLRU implements segmented LRU per set: blocks enter a probationary
// segment and are promoted to the protected segment on a hit; victims come
// from the probationary segment first. Scan-resistant: one-shot pages never
// get promoted and are evicted before any protected block.
type SLRU struct {
	base
	lastUse   [][]uint64
	protected [][]bool
	// ProtectedWays caps the protected segment per set (defaults to
	// ways/2 at Attach when zero).
	ProtectedWays int
}

// NewSLRU returns an SLRU policy engine.
func NewSLRU() *SLRU { return &SLRU{} }

// Name implements cache.Policy.
func (p *SLRU) Name() string { return "slru" }

// Attach implements cache.Policy.
func (p *SLRU) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.lastUse = p.meta()
	p.protected = make([][]bool, numSets)
	for i := range p.protected {
		p.protected[i] = make([]bool, ways)
	}
	if p.ProtectedWays <= 0 || p.ProtectedWays >= ways {
		p.ProtectedWays = ways / 2
		if p.ProtectedWays == 0 {
			p.ProtectedWays = 1
		}
	}
}

// OnAccess implements cache.Policy.
func (p *SLRU) OnAccess(cache.Request) {}

// OnHit implements cache.Policy: promote to protected, demoting the oldest
// protected block if the segment is full.
func (p *SLRU) OnHit(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
	if p.protected[setIdx][way] {
		return
	}
	count := 0
	oldest, oldestUse := -1, uint64(0)
	for w, prot := range p.protected[setIdx] {
		if !prot {
			continue
		}
		count++
		if oldest == -1 || p.lastUse[setIdx][w] < oldestUse {
			oldest, oldestUse = w, p.lastUse[setIdx][w]
		}
	}
	if count >= p.ProtectedWays && oldest >= 0 {
		p.protected[setIdx][oldest] = false
	}
	p.protected[setIdx][way] = true
}

// Admit implements cache.Policy.
func (p *SLRU) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy: LRU among probationary blocks, falling
// back to LRU among protected when every way is protected.
func (p *SLRU) Victim(setIdx int, blocks []cache.BlockView) int {
	best := -1
	var bestUse uint64
	for w := range blocks {
		if p.protected[setIdx][w] {
			continue
		}
		if best == -1 || p.lastUse[setIdx][w] < bestUse {
			best, bestUse = w, p.lastUse[setIdx][w]
		}
	}
	if best >= 0 {
		return best
	}
	for w := range blocks {
		if best == -1 || p.lastUse[setIdx][w] < bestUse {
			best, bestUse = w, p.lastUse[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *SLRU) OnEvict(setIdx, way int, _ uint64) {
	p.protected[setIdx][way] = false
}

// OnInsert implements cache.Policy.
func (p *SLRU) OnInsert(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
	p.protected[setIdx][way] = false
}

// rripMax is the 2-bit re-reference prediction value range of SRRIP.
const rripMax = 3

// SRRIP implements static re-reference interval prediction (Jaleel et al.,
// ISCA 2010) with 2-bit RRPVs: blocks insert at RRPV 2 ("long"), hits reset
// to 0 ("near-immediate"), and eviction takes the first block at RRPV 3,
// aging the whole set when none is found. Scan- and thrash-resistant, the
// strongest non-learned hardware baseline here.
type SRRIP struct {
	base
	rrpv [][]uint8
}

// NewSRRIP returns an SRRIP policy engine.
func NewSRRIP() *SRRIP { return &SRRIP{} }

// Name implements cache.Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Attach implements cache.Policy.
func (p *SRRIP) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.rrpv = make([][]uint8, numSets)
	for i := range p.rrpv {
		p.rrpv[i] = make([]uint8, ways)
		for w := range p.rrpv[i] {
			p.rrpv[i][w] = rripMax
		}
	}
}

// OnAccess implements cache.Policy.
func (p *SRRIP) OnAccess(cache.Request) {}

// OnHit implements cache.Policy.
func (p *SRRIP) OnHit(setIdx, way int, _ cache.Request) {
	p.rrpv[setIdx][way] = 0
}

// Admit implements cache.Policy.
func (p *SRRIP) Admit(cache.Request) bool { return true }

// Victim implements cache.Policy.
func (p *SRRIP) Victim(setIdx int, blocks []cache.BlockView) int {
	rr := p.rrpv[setIdx]
	for {
		for w := range blocks {
			if rr[w] == rripMax {
				return w
			}
		}
		for w := range blocks {
			rr[w]++
		}
	}
}

// OnEvict implements cache.Policy.
func (p *SRRIP) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy.
func (p *SRRIP) OnInsert(setIdx, way int, _ cache.Request) {
	p.rrpv[setIdx][way] = rripMax - 1
}
