package policy

import (
	"math"
	"sort"

	"repro/internal/cache"
	"repro/internal/gmm"
	"repro/internal/trace"
)

// Scorer predicts future access frequency from a normalized (page,
// timestamp) pair. Both the float gmm.Model and the fixed-point
// gmm.QuantizedModel satisfy it.
type Scorer interface {
	ScorePageTime(page, timestamp float64) float64
}

// BatchScorer is implemented by scorers that can evaluate blocks of points
// in one call (gmm.Model and gmm.QuantizedModel do, through linalg block
// kernels). Batched and per-call scoring must be bit-identical so callers
// may use either path without perturbing simulation results.
type BatchScorer interface {
	Scorer
	// ScorePageTimeBatch fills dst[i] with the score at (pages[i], times[i]).
	ScorePageTimeBatch(pages, times, dst []float64)
}

// ScratchBatchScorer is the zero-allocation refinement of BatchScorer:
// scoring happens through caller-owned gmm.Scratch, so a caller that keeps
// one scratch per concurrent scoring context (the serving path keeps one per
// partition) allocates nothing at steady state. The scratch variant must be
// bit-identical to the other scoring paths.
type ScratchBatchScorer interface {
	BatchScorer
	// ScorePageTimeBatchScratch is ScorePageTimeBatch through s; s may not
	// be shared by concurrent callers.
	ScorePageTimeBatchScratch(pages, times, dst []float64, s *gmm.Scratch)
}

// ScoreSamples evaluates the scorer over normalized samples, using the
// batch path when the scorer provides one.
func ScoreSamples(s Scorer, samples []trace.Sample, dst []float64) {
	if bs, ok := s.(BatchScorer); ok {
		pages := make([]float64, len(samples))
		times := make([]float64, len(samples))
		for i, sm := range samples {
			pages[i], times[i] = sm.Page, sm.Timestamp
		}
		bs.ScorePageTimeBatch(pages, times, dst)
		return
	}
	for i, sm := range samples {
		dst[i] = s.ScorePageTime(sm.Page, sm.Timestamp)
	}
}

// GMMMode selects which of the paper's three strategies (Fig. 6) the policy
// applies.
type GMMMode int

const (
	// GMMCachingOnly uses the score for admission and falls back to LRU
	// for eviction.
	GMMCachingOnly GMMMode = iota
	// GMMEvictionOnly admits everything and evicts the lowest-scored block.
	GMMEvictionOnly
	// GMMCachingEviction applies the score to both decisions.
	GMMCachingEviction
)

// String names the mode as in the Fig. 6 legend.
func (m GMMMode) String() string {
	switch m {
	case GMMCachingOnly:
		return "gmm-caching-only"
	case GMMEvictionOnly:
		return "gmm-eviction-only"
	default:
		return "gmm-caching-eviction"
	}
}

// GMM is the paper's cache policy engine (Sec. 3.2): on a miss the GMM
// scores the requested page from its page index and transformed timestamp;
// pages scoring below the threshold are not cached (smart caching), and when
// eviction is needed the resident block with the lowest stored score is
// replaced (smart eviction). Hits bypass the GMM entirely, exactly as in the
// hardware dataflow.
type GMM struct {
	base
	scorer    Scorer
	norm      trace.Normalizer
	tt        *trace.TimestampTransformer
	threshold float64
	mode      GMMMode

	scores  [][]float64 // per-block GMM score, the eviction key
	lastUse [][]uint64  // LRU metadata for the caching-only fallback

	// curScore/curValid memoize the score computed in Admit so OnInsert
	// stores it without a second inference, mirroring the single GMM PE
	// pass per miss in hardware.
	curScore float64
	curValid bool
	curTime  int

	// pre holds precomputed per-access scores (index = arrival order) when
	// the caller batch-scored the replay up front; accesses beyond its
	// length fall back to live inference. reqIdx counts OnAccess calls.
	pre    []float64
	reqIdx int

	// provided is a one-slot score supplied by ProvideScore for the next
	// access; it takes precedence over both pre and live inference.
	provided    float64
	hasProvided bool
}

// GMMConfig assembles a GMM policy.
type GMMConfig struct {
	// Scorer is the trained model (float or quantized).
	Scorer Scorer
	// Normalizer maps raw (page, timestamp) into model coordinates; use the
	// one fitted during training.
	Normalizer trace.Normalizer
	// Transform supplies the Algorithm 1 windowing parameters; it must
	// match the training configuration.
	Transform trace.TransformConfig
	// Threshold is the admission cutoff on the score. CalibrateThreshold
	// derives one from training-set scores.
	Threshold float64
	// Mode picks the Fig. 6 strategy.
	Mode GMMMode
	// Scores optionally supplies precomputed per-access scores aligned with
	// the replay order (entry i belongs to the i-th access of the trace).
	// When set, the policy reads scores instead of invoking the Scorer,
	// letting the replay engine batch all inference up front; batched
	// scoring is bit-identical to live scoring, so results do not change.
	Scores []float64
}

// NewGMM builds the policy engine.
func NewGMM(cfg GMMConfig) *GMM {
	return &GMM{
		scorer:    cfg.Scorer,
		norm:      cfg.Normalizer,
		tt:        trace.NewTimestampTransformer(cfg.Transform),
		threshold: cfg.Threshold,
		mode:      cfg.Mode,
		pre:       cfg.Scores,
	}
}

// Name implements cache.Policy.
func (p *GMM) Name() string { return p.mode.String() }

// Mode returns the configured strategy.
func (p *GMM) Mode() GMMMode { return p.mode }

// Threshold returns the admission cutoff.
func (p *GMM) Threshold() float64 { return p.threshold }

// SetThreshold replaces the admission cutoff. The online serving subsystem
// calls it at batch boundaries when a model refresh lands a recalibrated
// threshold; scores already stored with resident blocks are untouched.
func (p *GMM) SetThreshold(th float64) { p.threshold = th }

// ProvideScore supplies the GMM score for the next access, overriding both
// the precomputed-score slice and live inference. The serving pipeline uses
// it after batch-scoring a whole request batch with globally-derived
// timestamps: each shard pushes the request's score immediately before
// presenting the request to its cache, so per-shard policies never run their
// own (shard-local, hence wrong) Algorithm 1 clocks. The slot holds exactly
// one score and is consumed by the access that follows; callers must provide
// a score before every access or none.
func (p *GMM) ProvideScore(s float64) {
	p.provided = s
	p.hasProvided = true
}

// Attach implements cache.Policy.
func (p *GMM) Attach(numSets, ways int) {
	p.base.Attach(numSets, ways)
	p.scores = make([][]float64, numSets)
	for i := range p.scores {
		p.scores[i] = make([]float64, ways)
	}
	p.lastUse = p.meta()
}

// OnAccess implements cache.Policy. Every request advances the Algorithm 1
// window clock, whether it hits or misses.
func (p *GMM) OnAccess(req cache.Request) {
	p.curTime = p.tt.Next()
	p.curValid = false
	p.reqIdx++
}

// score returns the GMM score for the current request: the precomputed
// per-access score when the replay was batch-scored up front, one live
// inference otherwise.
func (p *GMM) score(page uint64) float64 {
	if p.curValid {
		return p.curScore
	}
	if p.hasProvided {
		p.curScore = p.provided
		p.hasProvided = false
	} else if i := p.reqIdx - 1; i >= 0 && i < len(p.pre) {
		p.curScore = p.pre[i]
	} else {
		np, nt := p.norm.ApplyPageTime(page, p.curTime)
		p.curScore = p.scorer.ScorePageTime(np, nt)
	}
	p.curValid = true
	return p.curScore
}

// OnHit implements cache.Policy. Hits bypass the GMM (Sec. 3.2); only the
// LRU fallback metadata is refreshed.
func (p *GMM) OnHit(setIdx, way int, req cache.Request) {
	p.lastUse[setIdx][way] = req.Seq
}

// Admit implements cache.Policy.
func (p *GMM) Admit(req cache.Request) bool {
	if p.mode == GMMEvictionOnly {
		// Smart eviction still needs the score recorded at insertion.
		p.score(req.Page)
		return true
	}
	return p.score(req.Page) >= p.threshold
}

// Victim implements cache.Policy.
func (p *GMM) Victim(setIdx int, blocks []cache.BlockView) int {
	if p.mode == GMMCachingOnly {
		// LRU fallback.
		best, bestUse := 0, p.lastUse[setIdx][0]
		for w := 1; w < len(blocks); w++ {
			if p.lastUse[setIdx][w] < bestUse {
				best, bestUse = w, p.lastUse[setIdx][w]
			}
		}
		return best
	}
	best, bestScore := 0, p.scores[setIdx][0]
	for w := 1; w < len(blocks); w++ {
		if p.scores[setIdx][w] < bestScore {
			best, bestScore = w, p.scores[setIdx][w]
		}
	}
	return best
}

// OnEvict implements cache.Policy.
func (p *GMM) OnEvict(int, int, uint64) {}

// OnInsert implements cache.Policy: the score computed on the miss is stored
// alongside the tag, substituting for the LRU counter (Sec. 3.2).
func (p *GMM) OnInsert(setIdx, way int, req cache.Request) {
	p.scores[setIdx][way] = p.score(req.Page)
	p.lastUse[setIdx][way] = req.Seq
}

// CalibrateThreshold chooses an admission threshold as the pct-quantile
// (0..1) of the model's scores over the (normalized) training samples.
// Rejecting the lowest-scoring pct of training mass makes the threshold
// track each benchmark's density scale, since absolute GMM densities vary
// by orders of magnitude across traces.
func CalibrateThreshold(s Scorer, samples []trace.Sample, pct float64) float64 {
	return CalibrateThresholds(s, samples, []float64{pct})[0]
}

// CalibrateThresholds computes the thresholds for several quantiles from a
// single (batched) scoring pass over the samples — the path the empirical
// threshold sweep uses, where re-scoring the training set per candidate
// would dominate the sweep's cost.
func CalibrateThresholds(s Scorer, samples []trace.Sample, pcts []float64) []float64 {
	out := make([]float64, len(pcts))
	if len(samples) == 0 {
		return out
	}
	// Subsample large training sets; the quantile is insensitive to it.
	const maxN = 8192
	stride := 1
	if len(samples) > maxN {
		stride = len(samples) / maxN
	}
	sub := make([]trace.Sample, 0, maxN)
	for i := 0; i < len(samples); i += stride {
		sub = append(sub, samples[i])
	}
	scores := make([]float64, len(sub))
	ScoreSamples(s, sub, scores)
	kept := scores[:0]
	for _, sc := range scores {
		if !math.IsNaN(sc) {
			kept = append(kept, sc)
		}
	}
	if len(kept) == 0 {
		return out
	}
	sort.Float64s(kept)
	for i, pct := range pcts {
		if pct < 0 {
			pct = 0
		}
		if pct > 1 {
			pct = 1
		}
		out[i] = kept[int(pct*float64(len(kept)-1))]
	}
	return out
}
