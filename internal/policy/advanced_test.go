package policy

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

func TestClockSecondChance(t *testing.T) {
	c := tinyCache(t, NewClock())
	access(c, 1, 2, 3, 4) // fill; all ref bits clear
	access(c, 1)          // 1 gets a second chance
	res := c.Access(5, false)
	// Hand starts at 0; way 0 holds page 1 with ref set -> cleared, move
	// on; way 1 (page 2) has clear bit -> evicted.
	if res.VictimPage != 2 {
		t.Errorf("CLOCK evicted %d, want 2", res.VictimPage)
	}
	if !c.Contains(1) {
		t.Error("referenced page 1 lost its second chance")
	}
}

func TestClockAllReferenced(t *testing.T) {
	c := tinyCache(t, NewClock())
	access(c, 1, 2, 3, 4)
	access(c, 1, 2, 3, 4) // all referenced
	res := c.Access(5, false)
	// First sweep clears everything, second sweep evicts way 0.
	if !res.Evicted {
		t.Fatal("no eviction")
	}
	if res.VictimPage != 1 {
		t.Errorf("victim = %d, want 1", res.VictimPage)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSLRUScanResistance(t *testing.T) {
	c := tinyCache(t, NewSLRU())
	// Build a protected working set: hits promote 1 and 2.
	access(c, 1, 2, 1, 2)
	// Scan: one-shot pages 10, 11, 12 flow through the probationary
	// segment.
	access(c, 10, 11, 12)
	if !c.Contains(1) || !c.Contains(2) {
		t.Error("protected pages lost to a scan — SLRU not scan-resistant")
	}
}

func TestSLRUProtectedCapacity(t *testing.T) {
	p := NewSLRU()
	c := tinyCache(t, p)
	// Promote three pages with ProtectedWays = 2 (ways/2): the oldest
	// promotion is demoted.
	access(c, 1, 2, 3, 4)
	access(c, 1, 2, 3) // promote 1, 2, then 3 demotes 1
	prot := 0
	for _, v := range p.protected[0] {
		if v {
			prot++
		}
	}
	if prot != 2 {
		t.Errorf("protected count = %d, want 2", prot)
	}
}

func TestSLRUAllProtectedFallback(t *testing.T) {
	p := NewSLRU()
	p.ProtectedWays = 4 // allow everything to be protected
	c := tinyCache(t, p)
	access(c, 1, 2, 3, 4)
	access(c, 1, 2, 3, 4) // promote all
	res := c.Access(5, false)
	if !res.Evicted {
		t.Fatal("no eviction when all ways protected")
	}
	if res.VictimPage != 1 {
		t.Errorf("victim = %d, want LRU fallback 1", res.VictimPage)
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := tinyCache(t, NewSRRIP())
	access(c, 1, 2, 3, 4)
	access(c, 1) // page 1 -> RRPV 0
	// Insertions are at RRPV 2; eviction ages everyone to find RRPV 3:
	// pages 2, 3, 4 reach 3 before page 1.
	res := c.Access(5, false)
	if res.VictimPage == 1 {
		t.Error("SRRIP evicted the re-referenced block")
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A hot set with periodic re-reference should survive a scan burst
	// better under SRRIP than under LRU.
	run := func(p cache.Policy) uint64 {
		c, err := cache.New(cache.Config{SizeBytes: 16 * 4096, BlockBytes: 4096, Ways: 4}, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 20000; i++ {
			if i%10 == 9 {
				// Scan: fresh one-shot page.
				c.Access(uint64(100000+i), false)
			} else {
				c.Access(uint64(rng.Intn(12)), false)
			}
		}
		return c.Stats().Misses
	}
	srrip := run(NewSRRIP())
	lru := run(NewLRU())
	if srrip > lru {
		t.Errorf("SRRIP misses %d > LRU misses %d on scan-mixed traffic", srrip, lru)
	}
}

func TestAdvancedPolicyNamesAndInvariants(t *testing.T) {
	policies := []cache.Policy{NewClock(), NewSLRU(), NewSRRIP()}
	names := []string{"clock", "slru", "srrip"}
	for i, p := range policies {
		if p.Name() != names[i] {
			t.Errorf("Name = %q, want %q", p.Name(), names[i])
		}
		c, err := cache.New(cache.Config{SizeBytes: 64 * 4096, BlockBytes: 4096, Ways: 8}, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for j := 0; j < 5000; j++ {
			c.Access(uint64(rng.Intn(300)), rng.Intn(3) == 0)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		if c.Stats().Accesses() != 5000 {
			t.Errorf("%s: lost accesses", p.Name())
		}
	}
}

func TestAdvancedPoliciesBeatRandomOnLocality(t *testing.T) {
	// Sanity: on strongly local traffic every structured policy should
	// beat random replacement.
	tr := make(trace.Trace, 30000)
	rng := rand.New(rand.NewSource(4))
	for i := range tr {
		page := uint64(rng.Intn(64))
		if rng.Intn(20) == 0 {
			page = uint64(1000 + rng.Intn(5000))
		}
		tr[i] = trace.Record{Op: trace.Read, Addr: page << trace.PageShift}
	}
	run := func(p cache.Policy) float64 {
		c, err := cache.New(cache.Config{SizeBytes: 32 * 4096, BlockBytes: 4096, Ways: 4}, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr {
			c.Access(r.Page(), false)
		}
		return c.Stats().MissRate()
	}
	random := run(NewRandom(1))
	for _, p := range []cache.Policy{NewClock(), NewSLRU(), NewSRRIP()} {
		if mr := run(p); mr > random {
			t.Errorf("%s miss rate %.4f worse than random %.4f", p.Name(), mr, random)
		}
	}
}
