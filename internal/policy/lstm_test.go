package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/lstm"
	"repro/internal/trace"
)

// tinyLSTM returns a small network so tests stay fast.
func tinyLSTM(t *testing.T) *lstm.Network {
	t.Helper()
	n, err := lstm.New(lstm.Config{InputDim: 2, HiddenDim: 8, Layers: 1, SeqLen: 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func newTestLSTMPolicy(t *testing.T, admit, evict bool, threshold float64) *LSTMPolicy {
	t.Helper()
	return NewLSTMPolicy(LSTMPolicyConfig{
		Net:        tinyLSTM(t),
		Normalizer: trace.Normalizer{PageScale: 1e-3, TimeScale: 1e-3},
		Transform:  trace.DefaultTransformConfig(),
		Threshold:  threshold,
		Admission:  admit,
		Eviction:   evict,
	})
}

func TestLSTMPolicyBasicTraffic(t *testing.T) {
	p := newTestLSTMPolicy(t, false, true, 0)
	c := tinyCache(t, p)
	for i := uint64(0); i < 100; i++ {
		c.Access(i%10, i%3 == 0)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	st := c.Stats()
	if st.Accesses() != 100 {
		t.Errorf("accesses = %d", st.Accesses())
	}
	if p.Inferences == 0 {
		t.Error("no LSTM inferences ran despite misses")
	}
	if p.Inferences > st.Misses {
		t.Errorf("inferences %d exceed misses %d (memoization broken)",
			p.Inferences, st.Misses)
	}
}

func TestLSTMPolicyHitsSkipInference(t *testing.T) {
	p := newTestLSTMPolicy(t, false, true, 0)
	c := tinyCache(t, p)
	c.Access(1, false)
	before := p.Inferences
	for i := 0; i < 50; i++ {
		c.Access(1, false)
	}
	if p.Inferences != before {
		t.Errorf("hits triggered %d extra inferences", p.Inferences-before)
	}
}

func TestLSTMPolicyAdmissionThreshold(t *testing.T) {
	// With an impossibly high threshold everything is bypassed.
	p := newTestLSTMPolicy(t, true, true, 1e18)
	c := tinyCache(t, p)
	c.Access(1, false)
	if c.Occupancy() != 0 {
		t.Error("page admitted despite absurd threshold")
	}
	// With a very low threshold everything is admitted.
	p2 := newTestLSTMPolicy(t, true, true, -1e18)
	c2 := tinyCache(t, p2)
	c2.Access(1, false)
	if c2.Occupancy() != 1 {
		t.Error("page rejected despite threshold of -inf")
	}
}

func TestLSTMPolicyLRUFallback(t *testing.T) {
	// Eviction disabled: behaves exactly like LRU on the victim side.
	p := newTestLSTMPolicy(t, false, false, 0)
	c := tinyCache(t, p)
	access(c, 1, 2, 3, 4)
	access(c, 1)
	res := c.Access(5, false)
	if res.VictimPage != 2 {
		t.Errorf("victim = %d, want LRU choice 2", res.VictimPage)
	}
	if p.Inferences != 0 {
		t.Error("pure-LRU mode should never run the network")
	}
}

func TestLSTMPolicyName(t *testing.T) {
	if newTestLSTMPolicy(t, false, false, 0).Name() != "lstm" {
		t.Error("name wrong")
	}
}

func TestTrainLSTMOnTrace(t *testing.T) {
	// Tiny end-to-end training run: must produce decreasing loss and a
	// usable normalizer.
	var tr trace.Trace
	for i := 0; i < 4000; i++ {
		page := uint64(i % 7) // heavily reused pages
		if i%13 == 0 {
			page = uint64(100 + i) // cold singletons
		}
		tr = append(tr, trace.Record{Op: trace.Read, Addr: page << trace.PageShift})
	}
	tr.Stamp()
	net := tinyLSTM(t)
	res, norm, err := TrainLSTMOnTrace(net, tr, trace.DefaultTransformConfig(), 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpochMSE) != 5 {
		t.Fatalf("epochs = %d", len(res.EpochMSE))
	}
	if res.EpochMSE[4] >= res.EpochMSE[0] {
		t.Errorf("loss did not improve: %v", res.EpochMSE)
	}
	if norm.PageScale == 0 {
		t.Error("degenerate normalizer")
	}

	// The trained policy must still run valid cache traffic.
	p := NewLSTMPolicy(LSTMPolicyConfig{
		Net: net, Normalizer: norm,
		Transform: trace.DefaultTransformConfig(),
		Eviction:  true,
	})
	c, err := cache.New(cache.Config{SizeBytes: 16 * 4096, BlockBytes: 4096, Ways: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr[:1000] {
		c.Access(r.Page(), false)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
