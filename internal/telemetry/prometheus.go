package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EventCount is one (kind, session) event-counter cell.
type EventCount struct {
	Kind    string
	Session string
	Count   uint64
}

// EventCounts returns the event counters sorted by kind then session.
func (r *Registry) EventCounts() []EventCount {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]EventCount, 0, len(r.events))
	for k, v := range r.events {
		out = append(out, EventCount{Kind: k.kind, Session: k.session, Count: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Session < out[j].Session
	})
	return out
}

// RenderPrometheus snapshots the registry and renders it in the Prometheus
// text exposition format, entirely into memory: the caller writes the
// returned buffer to the network, so no lock is ever held across a
// connection write and a stalled scraper cannot back-pressure the registry.
func (r *Registry) RenderPrometheus() []byte {
	var buf bytes.Buffer
	WritePrometheus(&buf, r.Status(), r.EventCounts())
	return buf.Bytes()
}

// promWriter accumulates one exposition document; it tracks which metric
// families have had their HELP/TYPE header written so samples of one family
// can come from several sessions and still group under one header.
type promWriter struct {
	w      io.Writer
	headed map[string]bool
}

// family writes the # HELP / # TYPE header once per metric name.
func (p *promWriter) family(name, help, typ string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line. Labels are (key, value) pairs, written in
// the order given; values are escaped per the exposition format.
func (p *promWriter) sample(name string, labels []string, value float64) {
	io.WriteString(p.w, name)
	if len(labels) > 0 {
		io.WriteString(p.w, "{")
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				io.WriteString(p.w, ",")
			}
			fmt.Fprintf(p.w, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		io.WriteString(p.w, "}")
	}
	// %g keeps integers integral and floats shortest-form, both valid.
	fmt.Fprintf(p.w, " %g\n", value)
}

// escapeLabel escapes a label value per the text exposition format
// (backslash, double quote, newline). %q then adds the surrounding quotes
// and re-escapes backslashes and quotes — so pre-escape only the newline —
// but building the final form here keeps the rule in one place.
func escapeLabel(v string) string {
	return strings.NewReplacer("\n", `\n`).Replace(v)
}

// WritePrometheus renders a status document plus event counters as
// Prometheus text. Pure function of its inputs, with deterministic output
// ordering (sessions and workers arrive sorted from Status, events sorted
// from EventCounts), so tests can pin the format byte-for-byte.
func WritePrometheus(w io.Writer, st *Status, events []EventCount) {
	p := &promWriter{w: w, headed: make(map[string]bool)}
	p.family("icgmm_uptime_seconds", "Wall time since the telemetry registry was created.", "gauge")
	p.sample("icgmm_uptime_seconds", nil, st.UptimeSeconds)

	for i := range st.Sessions {
		s := &st.Sessions[i]
		l := []string{"session", s.Name}
		p.family("icgmm_session_batches_total", "Ingest batches served by the session.", "counter")
		p.sample("icgmm_session_batches_total", l, float64(s.Batches))
		p.family("icgmm_session_done", "1 when the session's source is exhausted.", "gauge")
		p.sample("icgmm_session_done", l, boolGauge(s.Done))
		if s.Worker != nil {
			p.family("icgmm_session_worker", "Worker slot hosting the session.", "gauge")
			p.sample("icgmm_session_worker", l, float64(*s.Worker))
		}
		if s.Migrations > 0 {
			p.family("icgmm_session_migrations_total", "Live migrations of the session between workers.", "counter")
			p.sample("icgmm_session_migrations_total", l, float64(s.Migrations))
		}
		if s.Replays > 0 {
			p.family("icgmm_session_replays_total", "Checkpoint replays of the session after worker deaths.", "counter")
			p.sample("icgmm_session_replays_total", l, float64(s.Replays))
		}
		if s.LastCheckpointBatch != nil {
			p.family("icgmm_session_last_checkpoint_batch", "Batch boundary of the session's newest checkpoint.", "gauge")
			p.sample("icgmm_session_last_checkpoint_batch", l, float64(*s.LastCheckpointBatch))
			p.family("icgmm_session_last_checkpoint_age_seconds", "Wall time since the session's newest checkpoint.", "gauge")
			p.sample("icgmm_session_last_checkpoint_age_seconds", l, s.LastCheckpointAgeSeconds)
		}
		snap := s.Snapshot
		if snap == nil {
			continue
		}
		p.family("icgmm_session_ops_total", "Requests served by the session (as of the last snapshot).", "counter")
		p.sample("icgmm_session_ops_total", l, float64(snap.Ops))
		p.family("icgmm_session_hit_ratio", "Cumulative cache hit ratio of the session.", "gauge")
		p.sample("icgmm_session_hit_ratio", l, snap.HitRatio())
		p.family("icgmm_session_refreshes_total", "Refreshed model bundles installed.", "counter")
		p.sample("icgmm_session_refreshes_total", l, float64(snap.Refreshes))
		if snap.RefreshesFailed > 0 {
			p.family("icgmm_session_refreshes_failed_total", "Model refits that errored (previous bundle kept).", "counter")
			p.sample("icgmm_session_refreshes_failed_total", l, float64(snap.RefreshesFailed))
		}
		p.family("icgmm_session_throughput_virtual_ops", "Virtual-time throughput of the session (ops per virtual second).", "gauge")
		p.sample("icgmm_session_throughput_virtual_ops", l, snap.Throughput)
		p.family("icgmm_session_latency_ns", "Sojourn-time distribution of the session in nanoseconds.", "gauge")
		for _, q := range []struct {
			stat string
			v    float64
		}{
			{"mean", float64(snap.Latency.Mean)},
			{"p50", float64(snap.Latency.P50)},
			{"p99", float64(snap.Latency.P99)},
			{"max", float64(snap.Latency.Max)},
		} {
			p.sample("icgmm_session_latency_ns", append(l, "stat", q.stat), q.v)
		}
		if snap.Timing == "dataflow" {
			for j := range snap.Partitions {
				ps := &snap.Partitions[j]
				pl := append(l, "partition", fmt.Sprintf("%d", ps.Partition))
				p.family("icgmm_partition_queue_depth", "Mean outstanding-window depth of device-routed requests observed at arrival (dataflow timing).", "gauge")
				p.sample("icgmm_partition_queue_depth", pl, ps.QueueDepthMean)
				p.family("icgmm_module_busy_ratio", "Busy fraction of each dataflow pipeline module against the partition timeline's wall clock.", "gauge")
				for _, m := range []struct {
					module string
					v      float64
				}{
					{"gmm", ps.GMMBusyRatio},
					{"ssd", ps.SSDBusyRatio},
					{"ctrl", ps.CtrlBusyRatio},
				} {
					p.sample("icgmm_module_busy_ratio", append(pl, "module", m.module), m.v)
				}
			}
		}
		for j := range snap.Tenants {
			t := &snap.Tenants[j]
			tl := append(l, "tenant", t.Tenant)
			p.family("icgmm_tenant_ops_total", "Requests served for the tenant.", "counter")
			p.sample("icgmm_tenant_ops_total", tl, float64(t.Ops))
			p.family("icgmm_tenant_hit_ratio", "Cumulative cache hit ratio of the tenant.", "gauge")
			p.sample("icgmm_tenant_hit_ratio", tl, t.HitRatio())
			p.family("icgmm_tenant_latency_p99_ns", "p99 sojourn time of the tenant in nanoseconds.", "gauge")
			p.sample("icgmm_tenant_latency_p99_ns", tl, float64(t.Latency.P99))
			p.family("icgmm_tenant_budget_blocks", "HBM capacity share of the tenant in cache blocks.", "gauge")
			p.sample("icgmm_tenant_budget_blocks", tl, float64(t.BudgetBlocks))
			p.family("icgmm_tenant_resident_blocks", "Cache blocks currently resident for the tenant.", "gauge")
			p.sample("icgmm_tenant_resident_blocks", tl, float64(t.ResidentBlocks))
			p.family("icgmm_tenant_threshold", "Effective admission threshold of the tenant.", "gauge")
			p.sample("icgmm_tenant_threshold", tl, t.Threshold)
			if snap.Shadow && t.ShadowOps > 0 {
				shr := float64(t.ShadowHits) / float64(t.ShadowOps)
				p.family("icgmm_shadow_hit_ratio", "Cumulative hit ratio of the shadow policy over the tenant's device-routed traffic.", "gauge")
				p.sample("icgmm_shadow_hit_ratio", tl, shr)
				p.family("icgmm_shadow_hit_delta", "Shadow-minus-live hit-ratio delta for the tenant.", "gauge")
				p.sample("icgmm_shadow_hit_delta", tl, shr-t.HitRatio())
				p.family("icgmm_shadow_latency_mean_ns", "Modeled mean latency of the shadow policy for the tenant in nanoseconds.", "gauge")
				p.sample("icgmm_shadow_latency_mean_ns", tl, t.ShadowMeanNs)
				p.family("icgmm_shadow_latency_delta_ns", "Shadow-minus-live mean-latency delta for the tenant in nanoseconds.", "gauge")
				p.sample("icgmm_shadow_latency_delta_ns", tl, t.ShadowMeanNs-float64(t.Latency.Mean))
			}
		}
	}

	for _, ec := range events {
		p.family("icgmm_events_total", "Serving-path and cluster events by kind.", "counter")
		labels := []string{"kind", ec.Kind}
		if ec.Session != "" {
			labels = append(labels, "session", ec.Session)
		}
		p.sample("icgmm_events_total", labels, float64(ec.Count))
	}

	for i := range st.Workers {
		wk := &st.Workers[i]
		l := []string{"worker", fmt.Sprintf("%d", wk.Worker)}
		p.family("icgmm_worker_up", "1 while the worker slot has a live process.", "gauge")
		p.sample("icgmm_worker_up", l, boolGauge(wk.Up))
		p.family("icgmm_worker_steps_total", "Successful step round trips to the worker.", "counter")
		p.sample("icgmm_worker_steps_total", l, float64(wk.Steps))
		if wk.StepMisses > 0 {
			p.family("icgmm_worker_step_misses_total", "Failed step round trips to the worker.", "counter")
			p.sample("icgmm_worker_step_misses_total", l, float64(wk.StepMisses))
		}
		p.family("icgmm_worker_step_latency_ewma_seconds", "EWMA of the worker's step round-trip wall time.", "gauge")
		p.sample("icgmm_worker_step_latency_ewma_seconds", l, wk.StepLatencyEWMASeconds)
		p.family("icgmm_worker_heartbeat_age_seconds", "Staleness of the worker's last successful health probe (-1 before the first).", "gauge")
		p.sample("icgmm_worker_heartbeat_age_seconds", l, wk.HeartbeatAgeSeconds)
		if wk.HeartbeatMisses > 0 {
			p.family("icgmm_worker_heartbeat_misses_total", "Failed health probes of the worker.", "counter")
			p.sample("icgmm_worker_heartbeat_misses_total", l, float64(wk.HeartbeatMisses))
		}
		if wk.Restarts > 0 {
			p.family("icgmm_worker_restarts_total", "Respawns of the worker slot after deaths.", "counter")
			p.sample("icgmm_worker_restarts_total", l, float64(wk.Restarts))
		}
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
