package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/serve"
)

// Cluster-level trace/event kinds, continuing the serve.Event* kind
// namespace (drift, refresh, refresh-failed, share, checkpoint).
const (
	// EventMigration: a session was live-migrated between workers.
	EventMigration = "migration"
	// EventWorkerDeath: a worker process was declared dead.
	EventWorkerDeath = "worker-death"
	// EventReplay: a session was replayed from its last checkpoint after a
	// worker death.
	EventReplay = "replay"
)

// TraceEvent is one line of the telemetry trace stream: a wall-clock-stamped
// record of a state transition somewhere in the serving system. The trace is
// deliberately a separate stream from the deterministic metric JSONL — wall
// time and real-time interleaving belong here and only here.
type TraceEvent struct {
	// TimeUnixNs is the wall-clock stamp; the Tracer fills it at Emit.
	TimeUnixNs int64  `json:"time_unix_ns"`
	Kind       string `json:"kind"`
	// Session names the session the event belongs to (absent for
	// process-wide events like a worker death).
	Session string `json:"session,omitempty"`
	// Batch locates the event on the session's virtual timeline.
	Batch uint64 `json:"batch,omitempty"`
	// Worker is the worker slot involved (coordinator-side events).
	Worker *int `json:"worker,omitempty"`
	// Serve-event payload fields (see serve.Event).
	Tenant    string  `json:"tenant,omitempty"`
	Donor     string  `json:"donor,omitempty"`
	Blocks    uint64  `json:"blocks,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	HitRatio  float64 `json:"hit_ratio,omitempty"`
	Baseline  float64 `json:"baseline,omitempty"`
	Refreshes uint64  `json:"refreshes,omitempty"`
	Err       string  `json:"error,omitempty"`
	// QueueDepth is the congestion event's interval mean outstanding-window
	// depth (dataflow timing).
	QueueDepth float64 `json:"queue_depth,omitempty"`
}

// Tracer serializes TraceEvents as JSONL to a sink. Emits from different
// goroutines interleave whole lines (one encoder call under one mutex), so a
// coordinator and its probers can share a Tracer. All methods are safe on a
// nil receiver; write errors are sticky and reported by Err — telemetry is
// best-effort and must never fail the run it watches.
type Tracer struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewTracer builds a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// Emit stamps ev with the current wall clock (unless the caller already
// stamped it) and writes one line.
func (t *Tracer) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	if ev.TimeUnixNs == 0 {
		ev.TimeUnixNs = time.Now().UnixNano()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// SessionObserver bridges serve.Session.Observe into the telemetry layer:
// the returned function counts each event in the registry and emits it on
// the trace, attributed to the named session. Either reg or tr may be nil.
// The observer runs on the session's own goroutine at batch boundaries and
// does only an O(1) counter bump plus one buffered-encoder write, honoring
// the must-not-block contract of Session.Observe.
func SessionObserver(reg *Registry, tr *Tracer, session string) func(serve.Event) {
	return func(ev serve.Event) {
		reg.CountEvent(ev.Kind, session)
		tr.Emit(TraceEvent{
			Kind:       ev.Kind,
			Session:    session,
			Batch:      ev.Batch,
			Tenant:     ev.Tenant,
			Donor:      ev.Donor,
			Blocks:     ev.Blocks,
			Threshold:  ev.Threshold,
			HitRatio:   ev.HitRatio,
			Baseline:   ev.Baseline,
			Refreshes:  ev.Refreshes,
			Err:        ev.Err,
			QueueDepth: ev.QueueDepth,
		})
	}
}
