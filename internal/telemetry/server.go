package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler builds the debug mux over a registry:
//
//	/metrics       Prometheus text exposition
//	/status        one JSON Status document
//	/debug/pprof/  net/http/pprof profiles
//
// Every endpoint renders from registry snapshots into memory before writing,
// so handler goroutines never hold registry state across a network write.
// The handler is also mountable inside an existing server (the cluster
// worker serves it beside its /v1 protocol).
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		body := reg.RenderPrometheus()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(body)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		body, err := json.MarshalIndent(reg.Status(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(body, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "icgmm telemetry\n\n/metrics\n/status\n/debug/pprof/\n")
	})
	return mux
}

// Server is a running telemetry debug server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (":0" or "127.0.0.1:0" pick a free
// port; read the bound address back with Addr). The server runs on its own
// goroutines and holds no locks shared with the serving path, so it can be
// slow, scraped aggressively, or ignored without affecting the run.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(reg), ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately. In-flight scrapes are dropped —
// telemetry holds no state worth draining.
func (s *Server) Close() error { return s.srv.Close() }
