// Package telemetry is the read-side observability layer for the serving
// and cluster subsystems: a live view of what a run is doing *right now*,
// built entirely from state the deterministic path already produces.
//
// The package is three pieces:
//
//   - Registry: a process-local, mutex-guarded store of per-session
//     snapshots (serve.Snapshot, published at batch boundaries by whatever
//     loop drives the session), per-worker health (step-latency EWMA,
//     heartbeat staleness, restarts — the coordinator's view), and
//     monotonically increasing event counters.
//   - Server: an HTTP debug server exposing /metrics (Prometheus text
//     format), /status (one JSON document), and net/http/pprof under
//     /debug/pprof/ — the profiling hooks for the hot-path work.
//   - Tracer: a wall-clock-stamped structured event stream (JSONL), fed by
//     serve.Session observers and the cluster coordinator: drift fired,
//     refresh installed, share transferred, checkpoint taken, session
//     migrated, worker died, session replayed.
//
// # Determinism
//
// Nothing in this package sits on the deterministic serving path. Snapshots
// are taken by the session's own driving goroutine at batch boundaries (the
// only time Session.Metrics is legal) and handed to the Registry as
// immutable values; scrapers read the stored pointer without ever touching
// the session. Wall-clock time appears only in telemetry output — the trace
// stream and the status/metrics endpoints — never in the metric JSONL the
// goldens pin. The Registry lock is held only for in-memory reads and
// writes (rendering happens into a buffer before any network write), so a
// slow or blocked scraper can never stall Step. The golden-equivalence test
// pins all of this: a run with telemetry on, scraped concurrently, emits
// JSONL byte-identical to the same run with telemetry off.
//
// Every Registry and Tracer method is safe on a nil receiver, so call sites
// thread an optional telemetry hookup without branching.
package telemetry

import (
	"sort"
	"sync"
	"time"

	"repro/internal/serve"
)

// Registry is the process-local telemetry store. The zero value is not
// usable; build with NewRegistry. All methods are safe for concurrent use
// and safe on a nil receiver (no-ops / empty results).
type Registry struct {
	mu       sync.Mutex
	start    time.Time
	sessions map[string]*sessionEntry
	workers  map[int]*workerEntry
	events   map[eventKey]uint64
	restarts uint64
}

type eventKey struct{ kind, session string }

// sessionEntry is one session's live state as last published.
type sessionEntry struct {
	batches    uint64
	done       bool
	worker     int
	hasWorker  bool
	ckptBatch  uint64
	ckptAt     time.Time
	hasCkpt    bool
	migrations uint64
	replays    uint64
	snap       *serve.Snapshot
	snapAt     time.Time
}

// workerEntry is one worker slot's health as the coordinator observes it.
type workerEntry struct {
	url        string
	up         bool
	stepEWMA   float64 // seconds
	steps      uint64
	stepMisses uint64
	lastBeat   time.Time
	hasBeat    bool
	beatMisses uint64
	restarts   uint64
}

// stepEWMAAlpha weighs each new step-latency observation; ~0.2 tracks a
// shifting round time within a handful of rounds without jittering on one
// slow step.
const stepEWMAAlpha = 0.2

// NewRegistry returns an empty registry anchored at the current wall clock.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		sessions: make(map[string]*sessionEntry),
		workers:  make(map[int]*workerEntry),
		events:   make(map[eventKey]uint64),
	}
}

// session returns (creating if needed) the entry for name. Caller holds mu.
func (r *Registry) session(name string) *sessionEntry {
	e, ok := r.sessions[name]
	if !ok {
		e = &sessionEntry{}
		r.sessions[name] = e
	}
	return e
}

// worker returns (creating if needed) the entry for a slot. Caller holds mu.
func (r *Registry) worker(slot int) *workerEntry {
	e, ok := r.workers[slot]
	if !ok {
		e = &workerEntry{}
		r.workers[slot] = e
	}
	return e
}

// PublishSnapshot stores a session's aggregate snapshot. The snapshot must
// not be mutated afterwards (Session.Metrics returns a fresh value each
// call, so the natural usage is safe).
func (r *Registry) PublishSnapshot(name string, snap *serve.Snapshot) {
	if r == nil || snap == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.session(name)
	e.snap = snap
	e.snapAt = time.Now()
	e.batches = snap.Batches
}

// PublishProgress records a session's cheap progress counters — batch count
// and completion — without the cost of a full snapshot.
func (r *Registry) PublishProgress(name string, batches uint64, done bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.session(name)
	e.batches = batches
	if done {
		e.done = true
	}
}

// RecordCheckpoint records that a session checkpointed at a batch boundary.
func (r *Registry) RecordCheckpoint(name string, batch uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.session(name)
	e.ckptBatch = batch
	e.ckptAt = time.Now()
	e.hasCkpt = true
}

// SetPlacement records which worker slot hosts a session.
func (r *Registry) SetPlacement(name string, worker int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.session(name)
	e.worker = worker
	e.hasWorker = true
}

// RecordMigration counts one live migration of a session.
func (r *Registry) RecordMigration(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.session(name).migrations++
	r.events[eventKey{kind: EventMigration, session: name}]++
	r.mu.Unlock()
}

// RecordReplay counts one crash replay of a session.
func (r *Registry) RecordReplay(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.session(name).replays++
	r.events[eventKey{kind: EventReplay, session: name}]++
	r.mu.Unlock()
}

// Remove drops a session from the registry — e.g. after it migrated away
// from this worker and its live state is now someone else's to report.
func (r *Registry) Remove(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.sessions, name)
	r.mu.Unlock()
}

// CountEvent bumps the counter for an event kind, attributed to a session
// ("" for process-wide events like a worker death).
func (r *Registry) CountEvent(kind, session string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events[eventKey{kind: kind, session: session}]++
	r.mu.Unlock()
}

// RecordWorker marks a worker slot up at the given URL (launch or respawn).
func (r *Registry) RecordWorker(slot int, url string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e := r.worker(slot)
	e.url = url
	e.up = true
	r.mu.Unlock()
}

// SetWorkerUp flips a worker slot's liveness flag.
func (r *Registry) SetWorkerUp(slot int, up bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.worker(slot).up = up
	r.mu.Unlock()
}

// ObserveStep records one coordinator→worker step round trip: its wall time
// feeds the slot's EWMA on success; a failed step counts as a miss.
func (r *Registry) ObserveStep(slot int, d time.Duration, ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.worker(slot)
	if !ok {
		e.stepMisses++
		return
	}
	s := d.Seconds()
	if e.steps == 0 {
		e.stepEWMA = s
	} else {
		e.stepEWMA += stepEWMAAlpha * (s - e.stepEWMA)
	}
	e.steps++
}

// Heartbeat records one health-probe outcome for a worker slot.
func (r *Registry) Heartbeat(slot int, ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.worker(slot)
	if ok {
		e.lastBeat = time.Now()
		e.hasBeat = true
	} else {
		e.beatMisses++
	}
}

// RecordRestart counts one respawn of a worker slot after a death.
func (r *Registry) RecordRestart(slot int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.worker(slot).restarts++
	r.restarts++
	r.mu.Unlock()
}

// Status is the /status JSON document: everything the registry knows, in
// one deterministic-ordered snapshot (sessions by name, workers by slot).
type Status struct {
	// UptimeSeconds is the wall time since the registry was built.
	UptimeSeconds float64         `json:"uptime_seconds"`
	Sessions      []SessionStatus `json:"sessions,omitempty"`
	Workers       []WorkerStatus  `json:"workers,omitempty"`
	// Events sums the event counters by kind over all sessions.
	Events map[string]uint64 `json:"events,omitempty"`
}

// SessionStatus is one session's live view.
type SessionStatus struct {
	Name    string `json:"name"`
	Batches uint64 `json:"batches"`
	Done    bool   `json:"done,omitempty"`
	// Worker is the hosting slot, when a coordinator placed the session.
	Worker     *int   `json:"worker,omitempty"`
	Migrations uint64 `json:"migrations,omitempty"`
	Replays    uint64 `json:"replays,omitempty"`
	// LastCheckpointBatch / LastCheckpointAgeSeconds locate the newest
	// checkpoint (absent until the first one).
	LastCheckpointBatch      *uint64 `json:"last_checkpoint_batch,omitempty"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds,omitempty"`
	// Snapshot is the last published aggregate snapshot (may trail Batches
	// by up to the publish cadence); SnapshotAgeSeconds dates it.
	SnapshotAgeSeconds float64         `json:"snapshot_age_seconds,omitempty"`
	Snapshot           *serve.Snapshot `json:"snapshot,omitempty"`
}

// WorkerStatus is one worker slot's health view.
type WorkerStatus struct {
	Worker     int    `json:"worker"`
	URL        string `json:"url,omitempty"`
	Up         bool   `json:"up"`
	Steps      uint64 `json:"steps,omitempty"`
	StepMisses uint64 `json:"step_misses,omitempty"`
	// StepLatencyEWMASeconds tracks the slot's recent step round-trip time.
	StepLatencyEWMASeconds float64 `json:"step_latency_ewma_seconds,omitempty"`
	// HeartbeatAgeSeconds is the staleness of the last successful probe
	// (negative when no probe has succeeded yet).
	HeartbeatAgeSeconds float64 `json:"heartbeat_age_seconds,omitempty"`
	HeartbeatMisses     uint64  `json:"heartbeat_misses,omitempty"`
	Restarts            uint64  `json:"restarts,omitempty"`
}

// Status assembles the current /status document.
func (r *Registry) Status() *Status {
	if r == nil {
		return &Status{}
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &Status{UptimeSeconds: now.Sub(r.start).Seconds()}
	for _, name := range r.sessionNames() {
		e := r.sessions[name]
		ss := SessionStatus{
			Name:       name,
			Batches:    e.batches,
			Done:       e.done,
			Migrations: e.migrations,
			Replays:    e.replays,
			Snapshot:   e.snap,
		}
		if e.hasWorker {
			w := e.worker
			ss.Worker = &w
		}
		if e.hasCkpt {
			b := e.ckptBatch
			ss.LastCheckpointBatch = &b
			ss.LastCheckpointAgeSeconds = now.Sub(e.ckptAt).Seconds()
		}
		if e.snap != nil {
			ss.SnapshotAgeSeconds = now.Sub(e.snapAt).Seconds()
		}
		st.Sessions = append(st.Sessions, ss)
	}
	for _, slot := range r.workerSlots() {
		e := r.workers[slot]
		ws := WorkerStatus{
			Worker:                 slot,
			URL:                    e.url,
			Up:                     e.up,
			Steps:                  e.steps,
			StepMisses:             e.stepMisses,
			StepLatencyEWMASeconds: e.stepEWMA,
			HeartbeatMisses:        e.beatMisses,
			Restarts:               e.restarts,
		}
		if e.hasBeat {
			ws.HeartbeatAgeSeconds = now.Sub(e.lastBeat).Seconds()
		} else {
			ws.HeartbeatAgeSeconds = -1
		}
		st.Workers = append(st.Workers, ws)
	}
	if len(r.events) > 0 {
		st.Events = make(map[string]uint64)
		for k, v := range r.events {
			st.Events[k.kind] += v
		}
	}
	return st
}

// sessionNames returns the session names sorted. Caller holds mu.
func (r *Registry) sessionNames() []string {
	names := make([]string, 0, len(r.sessions))
	for n := range r.sessions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// workerSlots returns the worker slots sorted. Caller holds mu.
func (r *Registry) workerSlots() []int {
	slots := make([]int, 0, len(r.workers))
	for s := range r.workers {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	return slots
}
