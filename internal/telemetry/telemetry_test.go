package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

// testSnapshot builds a small aggregate snapshot with enough populated
// fields to exercise every per-session and per-tenant metric family.
func testSnapshot() *serve.Snapshot {
	snap := &serve.Snapshot{
		Ops:             100,
		Batches:         4,
		Refreshes:       2,
		RefreshesFailed: 1,
		Throughput:      123.5,
		Latency:         stats.Summary{Mean: 10, P50: 8, P99: 20, Max: 30},
		Tenants: []serve.TenantSnapshot{
			{Tenant: "a", Ops: 60, Hits: 30, BudgetBlocks: 10, ResidentBlocks: 5,
				Threshold: 0.5, Latency: stats.Summary{P99: 15}},
			{Tenant: "b", Ops: 40, Hits: 20, BudgetBlocks: 6, ResidentBlocks: 6,
				Threshold: 0.25, Latency: stats.Summary{P99: 9}},
		},
	}
	snap.Cache.Hits = 50
	snap.Cache.Misses = 50
	return snap
}

func TestNilRegistryAndTracerAreSafe(t *testing.T) {
	var r *Registry
	r.PublishSnapshot("s", testSnapshot())
	r.PublishProgress("s", 1, true)
	r.RecordCheckpoint("s", 1)
	r.SetPlacement("s", 0)
	r.RecordMigration("s")
	r.RecordReplay("s")
	r.Remove("s")
	r.CountEvent("drift", "s")
	r.RecordWorker(0, "http://x")
	r.SetWorkerUp(0, true)
	r.ObserveStep(0, time.Second, true)
	r.Heartbeat(0, true)
	r.RecordRestart(0)
	if st := r.Status(); st == nil || len(st.Sessions) != 0 || len(st.Workers) != 0 {
		t.Fatalf("nil registry Status = %+v, want empty", st)
	}
	if ec := r.EventCounts(); ec != nil {
		t.Fatalf("nil registry EventCounts = %v, want nil", ec)
	}
	if body := r.RenderPrometheus(); !bytes.Contains(body, []byte("icgmm_uptime_seconds")) {
		t.Fatalf("nil registry RenderPrometheus missing uptime:\n%s", body)
	}

	var tr *Tracer
	tr.Emit(TraceEvent{Kind: "drift"})
	if err := tr.Err(); err != nil {
		t.Fatalf("nil tracer Err = %v", err)
	}
	// The observer bridge must tolerate both halves being nil.
	SessionObserver(nil, nil, "s")(serve.Event{Kind: serve.EventDrift})
}

func TestRegistryStatus(t *testing.T) {
	r := NewRegistry()
	// Publish out of name order to check the deterministic sort.
	r.PublishProgress("zeta", 7, false)
	r.PublishSnapshot("alpha", testSnapshot())
	r.PublishProgress("alpha", 4, false)
	r.RecordCheckpoint("alpha", 3)
	r.SetPlacement("alpha", 1)
	r.RecordMigration("alpha")
	r.RecordReplay("alpha")
	r.PublishProgress("zeta", 9, true)
	r.CountEvent(serve.EventDrift, "alpha")
	r.CountEvent(serve.EventDrift, "zeta")

	r.RecordWorker(1, "http://b")
	r.RecordWorker(0, "http://a")
	r.ObserveStep(0, 100*time.Millisecond, true)
	r.ObserveStep(0, 200*time.Millisecond, true)
	r.ObserveStep(0, time.Second, false)
	r.Heartbeat(0, true)
	r.Heartbeat(1, false)
	r.SetWorkerUp(1, false)
	r.RecordRestart(1)

	st := r.Status()
	if st.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", st.UptimeSeconds)
	}
	if len(st.Sessions) != 2 || st.Sessions[0].Name != "alpha" || st.Sessions[1].Name != "zeta" {
		t.Fatalf("sessions not sorted by name: %+v", st.Sessions)
	}
	a := st.Sessions[0]
	if a.Batches != 4 || a.Done || a.Migrations != 1 || a.Replays != 1 {
		t.Fatalf("alpha status = %+v", a)
	}
	if a.Worker == nil || *a.Worker != 1 {
		t.Fatalf("alpha worker = %v, want 1", a.Worker)
	}
	if a.LastCheckpointBatch == nil || *a.LastCheckpointBatch != 3 || a.LastCheckpointAgeSeconds < 0 {
		t.Fatalf("alpha checkpoint = %v age %v", a.LastCheckpointBatch, a.LastCheckpointAgeSeconds)
	}
	if a.Snapshot == nil || a.Snapshot.Ops != 100 || a.SnapshotAgeSeconds < 0 {
		t.Fatalf("alpha snapshot = %+v age %v", a.Snapshot, a.SnapshotAgeSeconds)
	}
	z := st.Sessions[1]
	if z.Batches != 9 || !z.Done || z.Worker != nil || z.LastCheckpointBatch != nil || z.Snapshot != nil {
		t.Fatalf("zeta status = %+v", z)
	}

	if len(st.Workers) != 2 || st.Workers[0].Worker != 0 || st.Workers[1].Worker != 1 {
		t.Fatalf("workers not sorted by slot: %+v", st.Workers)
	}
	w0 := st.Workers[0]
	if !w0.Up || w0.URL != "http://a" || w0.Steps != 2 || w0.StepMisses != 1 {
		t.Fatalf("worker 0 = %+v", w0)
	}
	// EWMA: first observation seeds (0.1s), second blends 0.2*(0.2-0.1).
	if want := 0.1 + stepEWMAAlpha*(0.2-0.1); !closeTo(w0.StepLatencyEWMASeconds, want) {
		t.Fatalf("worker 0 EWMA = %v, want %v", w0.StepLatencyEWMASeconds, want)
	}
	if w0.HeartbeatAgeSeconds < 0 {
		t.Fatalf("worker 0 heartbeat age = %v after a successful probe", w0.HeartbeatAgeSeconds)
	}
	w1 := st.Workers[1]
	if w1.Up || w1.HeartbeatMisses != 1 || w1.Restarts != 1 {
		t.Fatalf("worker 1 = %+v", w1)
	}
	if w1.HeartbeatAgeSeconds != -1 {
		t.Fatalf("worker 1 heartbeat age = %v, want -1 before first success", w1.HeartbeatAgeSeconds)
	}

	// Events sum by kind across sessions; migration/replay count themselves.
	if st.Events[serve.EventDrift] != 2 || st.Events[EventMigration] != 1 || st.Events[EventReplay] != 1 {
		t.Fatalf("events = %v", st.Events)
	}

	r.Remove("zeta")
	if st := r.Status(); len(st.Sessions) != 1 || st.Sessions[0].Name != "alpha" {
		t.Fatalf("after Remove: %+v", st.Sessions)
	}
}

func closeTo(got, want float64) bool {
	d := got - want
	return d < 1e-12 && d > -1e-12
}

func TestEventCountsSorted(t *testing.T) {
	r := NewRegistry()
	r.CountEvent("share", "b")
	r.CountEvent("drift", "b")
	r.CountEvent("drift", "a")
	r.CountEvent("drift", "a")
	r.CountEvent(EventWorkerDeath, "")
	got := r.EventCounts()
	want := []EventCount{
		{Kind: "drift", Session: "a", Count: 2},
		{Kind: "drift", Session: "b", Count: 1},
		{Kind: "share", Session: "b", Count: 1},
		{Kind: EventWorkerDeath, Session: "", Count: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("EventCounts = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EventCounts[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPrometheusWellFormed renders a fully populated registry and checks the
// exposition document line by line: every line is either a well-formed
// comment or a sample, and each family has exactly one HELP and one TYPE
// header, appearing before its first sample.
func TestPrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.PublishSnapshot("s1", testSnapshot())
	r.PublishSnapshot("s2", testSnapshot())
	r.RecordCheckpoint("s1", 3)
	r.SetPlacement("s1", 0)
	r.RecordMigration("s1")
	r.RecordReplay("s1")
	r.CountEvent(serve.EventDrift, "s1")
	r.CountEvent(EventWorkerDeath, "")
	r.RecordWorker(0, "http://a")
	r.ObserveStep(0, time.Millisecond, true)
	r.ObserveStep(0, time.Millisecond, false)
	r.Heartbeat(0, false)
	r.RecordRestart(0)

	body := r.RenderPrometheus()
	helped := map[string]int{}
	typed := map[string]int{}
	sampled := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			helped[name]++
			if sampled[name] {
				t.Errorf("HELP for %s after its first sample", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || (fields[1] != "counter" && fields[1] != "gauge") {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			typed[fields[0]]++
		case line == "":
			t.Error("blank line in exposition output")
		default:
			name, rest, ok := splitSample(line)
			if !ok {
				t.Errorf("malformed sample line %q", line)
				continue
			}
			sampled[name] = true
			if helped[name] == 0 || typed[name] == 0 {
				t.Errorf("sample %q before/without HELP+TYPE", line)
			}
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Errorf("unparseable value in %q: %v", line, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name, n := range helped {
		if n != 1 || typed[name] != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE headers; want exactly 1 each", name, n, typed[name])
		}
		if !sampled[name] {
			t.Errorf("family %s has headers but no samples", name)
		}
	}
	// Spot-check families that only appear with a populated registry.
	for _, want := range []string{
		"icgmm_uptime_seconds", "icgmm_session_batches_total", "icgmm_session_hit_ratio",
		"icgmm_session_latency_ns", "icgmm_tenant_ops_total", "icgmm_tenant_budget_blocks",
		"icgmm_events_total", "icgmm_worker_up", "icgmm_worker_step_latency_ewma_seconds",
		"icgmm_worker_restarts_total", "icgmm_session_migrations_total",
	} {
		if !sampled[want] {
			t.Errorf("expected family %s in output", want)
		}
	}
	// Two sessions, one header per family: the s2 samples ride under the
	// header written for s1.
	if n := bytes.Count(body, []byte(`icgmm_session_batches_total{session=`)); n != 2 {
		t.Errorf("want 2 session_batches samples, got %d:\n%s", n, body)
	}
}

// splitSample splits a sample line into metric name and the rest (value),
// tolerating a label block that may itself contain escaped quotes.
func splitSample(line string) (name, rest string, ok bool) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		end := -1
		inQuote := false
		for j := i + 1; j < len(line); j++ {
			switch line[j] {
			case '\\':
				j++
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 || end+2 > len(line) {
			return "", "", false
		}
		return line[:i], strings.TrimSpace(line[end+1:]), true
	}
	fields := strings.SplitN(line, " ", 2)
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// TestPrometheusDataflowGauges: a dataflow-timed snapshot exposes the
// per-partition queue-depth and per-module busy-ratio gauges; a flat
// snapshot (Timing unset, as every pre-dataflow publisher produces) must not
// grow new families, keeping the flat exposition byte-stable.
func TestPrometheusDataflowGauges(t *testing.T) {
	r := NewRegistry()
	snap := testSnapshot()
	snap.Timing = "dataflow"
	snap.Partitions = []serve.PartitionSnapshot{
		{Partition: 0, Ops: 60, HostOps: 10, DeviceOps: 50, QueueDepthMean: 1.25,
			Stalls: 3, GMMBusyRatio: 0.01, SSDBusyRatio: 0.8, CtrlBusyRatio: 0.002},
		{Partition: 1, Ops: 40, DeviceOps: 40, QueueDepthMean: 2.5,
			SSDBusyRatio: 0.95},
	}
	r.PublishSnapshot("df", snap)
	body := string(r.RenderPrometheus())
	for _, want := range []string{
		`icgmm_partition_queue_depth{session="df",partition="0"} 1.25`,
		`icgmm_partition_queue_depth{session="df",partition="1"} 2.5`,
		`icgmm_module_busy_ratio{session="df",partition="0",module="gmm"} 0.01`,
		`icgmm_module_busy_ratio{session="df",partition="0",module="ssd"} 0.8`,
		`icgmm_module_busy_ratio{session="df",partition="0",module="ctrl"} 0.002`,
		`icgmm_module_busy_ratio{session="df",partition="1",module="ssd"} 0.95`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing sample %q in:\n%s", want, body)
		}
	}

	flat := NewRegistry()
	flat.PublishSnapshot("f", testSnapshot())
	if b := string(flat.RenderPrometheus()); strings.Contains(b, "icgmm_partition_queue_depth") ||
		strings.Contains(b, "icgmm_module_busy_ratio") {
		t.Errorf("flat snapshot exposed dataflow gauges:\n%s", b)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.PublishProgress("a\"b\\c\nd", 1, false)
	body := string(r.RenderPrometheus())
	want := `icgmm_session_batches_total{session="a\"b\\c\\nd"} 1`
	if !strings.Contains(body, want) {
		t.Fatalf("escaped label %q not found in:\n%s", want, body)
	}
}

func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	before := time.Now().UnixNano()
	tr.Emit(TraceEvent{Kind: serve.EventDrift, Session: "s", HitRatio: 0.5, Baseline: 0.7})
	tr.Emit(TraceEvent{Kind: EventMigration, Session: "s", TimeUnixNs: 42})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var ev TraceEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TimeUnixNs < before || ev.Kind != serve.EventDrift || ev.HitRatio != 0.5 {
		t.Fatalf("trace line 0 = %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.TimeUnixNs != 42 {
		t.Fatalf("caller-stamped time overwritten: %+v", ev)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n == 0 {
		return 0, errors.New("sink broke")
	}
	w.n--
	return len(p), nil
}

func TestTracerStickyError(t *testing.T) {
	tr := NewTracer(&failWriter{n: 1})
	tr.Emit(TraceEvent{Kind: "a"})
	if err := tr.Err(); err != nil {
		t.Fatalf("first emit errored: %v", err)
	}
	tr.Emit(TraceEvent{Kind: "b"})
	if err := tr.Err(); err == nil {
		t.Fatal("want sticky error after failed emit")
	}
	tr.Emit(TraceEvent{Kind: "c"}) // must not panic or clear the error
	if err := tr.Err(); err == nil {
		t.Fatal("sticky error cleared")
	}
}

func TestSessionObserver(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	obs := SessionObserver(r, NewTracer(&buf), "sess")
	obs(serve.Event{Kind: serve.EventShare, Batch: 9, Tenant: "a", Donor: "b", Blocks: 4})
	obs(serve.Event{Kind: serve.EventRefresh, Batch: 11, Threshold: 0.5, Refreshes: 1})

	ec := r.EventCounts()
	if len(ec) != 2 || ec[0].Kind != serve.EventRefresh || ec[1].Kind != serve.EventShare {
		t.Fatalf("EventCounts = %+v", ec)
	}
	for _, c := range ec {
		if c.Session != "sess" || c.Count != 1 {
			t.Fatalf("event cell = %+v", c)
		}
	}
	var ev TraceEvent
	line, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != serve.EventShare || ev.Session != "sess" || ev.Batch != 9 ||
		ev.Tenant != "a" || ev.Donor != "b" || ev.Blocks != 4 || ev.TimeUnixNs == 0 {
		t.Fatalf("trace event = %+v", ev)
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.PublishSnapshot("s", testSnapshot())
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	body, ct := get(t, base+"/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "icgmm_session_hit_ratio") {
		t.Fatalf("/metrics body:\n%s", body)
	}

	body, ct = get(t, base+"/status")
	if ct != "application/json" {
		t.Fatalf("/status content type = %q", ct)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Name != "s" || st.Sessions[0].Snapshot == nil {
		t.Fatalf("/status = %+v", st)
	}

	body, _ = get(t, base+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index:\n%s", body)
	}
	body, _ = get(t, base+"/")
	if !strings.Contains(body, "/metrics") {
		t.Fatalf("index page:\n%s", body)
	}
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", resp.StatusCode)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestStalledScraperDoesNotBlockPublish pins the no-back-pressure invariant:
// a scraper that connects and never reads must not stop the serving loop
// from publishing into the registry, because rendering happens into memory
// before any network write and the registry lock is never held across one.
func TestStalledScraperDoesNotBlockPublish(t *testing.T) {
	r := NewRegistry()
	r.PublishSnapshot("s", testSnapshot())
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A scraper that sends the request and then goes to sleep forever.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			r.PublishProgress("s", uint64(i), false)
			r.PublishSnapshot("s", testSnapshot())
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing stalled behind a non-reading scraper")
	}
}

// TestConcurrentScrapeAndPublish hammers the registry from scrapers and
// publishers at once; run under -race this is the data-race check for the
// whole read side.
func TestConcurrentScrapeAndPublish(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.PublishSnapshot(name, testSnapshot())
				r.PublishProgress(name, uint64(i), false)
				r.CountEvent(serve.EventDrift, name)
				r.ObserveStep(g, time.Millisecond, i%7 != 0)
				r.Heartbeat(g, i%5 != 0)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if body := r.RenderPrometheus(); len(body) == 0 {
					t.Error("empty render")
					return
				}
				if st := r.Status(); st == nil {
					t.Error("nil status")
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
