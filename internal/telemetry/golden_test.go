package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

// elasticSpec loads the committed 3-tenant elastic scenario — the same
// document behind cmd/icgmm-serve's golden test and the serve package's
// session fixture — pinned to a shard count.
func elasticSpec(t testing.TB, shards int) serve.Spec {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "icgmm-serve", "testdata", "spec-elastic.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = shards
	return spec
}

// TestGoldenEquivalence is the determinism acceptance test for the whole
// telemetry layer: the pinned 3-tenant elastic scenario runs with telemetry
// fully on — registry publishes every batch, event observer, trace stream,
// debug server scraped concurrently the entire time, plus a checkpoint and
// resume in the middle — and its metric JSONL must be byte-identical to the
// committed golden produced with telemetry off, at shards 1, 2 and 8.
func TestGoldenEquivalence(t *testing.T) {
	t.Parallel()
	golden, err := os.ReadFile(filepath.Join("..", "serve", "testdata", "tenant_golden.jsonl"))
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	for _, shards := range []int{1, 2, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			t.Parallel()
			got, trace := runInstrumented(t, shards)
			if !bytes.Equal(got, golden) {
				t.Errorf("telemetry-on JSONL diverges from telemetry-off golden (%d vs %d bytes)",
					len(got), len(golden))
			}
			checkTrace(t, trace)
		})
	}
}

// runInstrumented runs the elastic scenario with every telemetry hook
// engaged and returns the metric JSONL and the trace stream.
func runInstrumented(t *testing.T, shards int) (metrics, trace []byte) {
	t.Helper()
	reg := telemetry.NewRegistry()
	var traceBuf bytes.Buffer
	tracer := telemetry.NewTracer(&traceBuf)
	srv, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Scrapers hammer /metrics and /status for the whole run: live reads
	// must never perturb the stream.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/status"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					continue // server closing down
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}("http://" + srv.Addr() + path)
	}
	defer func() { close(stop); wg.Wait() }()

	const name = "golden"
	drive := func(sess *serve.Session, until uint64) {
		t.Helper()
		sess.Observe(telemetry.SessionObserver(reg, tracer, name))
		for !sess.Done() && (until == 0 || sess.Batches() < until) {
			if _, err := sess.Step(1); err != nil {
				t.Fatal(err)
			}
			reg.PublishProgress(name, sess.Batches(), sess.Done())
			if sess.Batches()%4 == 0 {
				reg.PublishSnapshot(name, sess.Metrics())
			}
		}
	}

	var pre bytes.Buffer
	sess, err := serve.Open(elasticSpec(t, shards), &pre)
	if err != nil {
		t.Fatal(err)
	}
	drive(sess, 80)
	var ckpt bytes.Buffer
	if err := sess.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	reg.RecordCheckpoint(name, sess.Batches())

	var post bytes.Buffer
	resumed, err := serve.Resume(bytes.NewReader(ckpt.Bytes()), &post)
	if err != nil {
		t.Fatal(err)
	}
	drive(resumed, 0)
	if _, err := resumed.Run(); err != nil { // emits the final records
		t.Fatal(err)
	}
	reg.PublishSnapshot(name, resumed.Metrics())

	// The registry saw the run: final scrape must expose per-tenant series.
	body := string(reg.RenderPrometheus())
	for _, want := range []string{"icgmm_session_batches_total", "icgmm_tenant_hit_ratio", "icgmm_events_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("final /metrics missing %s:\n%s", want, body)
		}
	}
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	return append(append([]byte(nil), pre.Bytes()...), post.Bytes()...), traceBuf.Bytes()
}

// checkTrace validates the trace stream: every line one well-formed
// wall-clock-stamped event, and the scenario's known transitions present.
func checkTrace(t *testing.T, trace []byte) {
	t.Helper()
	kinds := map[string]int{}
	for _, line := range bytes.Split(bytes.TrimSpace(trace), []byte("\n")) {
		var ev telemetry.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.TimeUnixNs == 0 || ev.Kind == "" {
			t.Fatalf("unstamped trace event %+v", ev)
		}
		kinds[ev.Kind]++
	}
	// The elastic scenario drifts, refreshes, transfers one share (batch 88,
	// in the resumed half), and we checkpointed once.
	for _, want := range []string{serve.EventDrift, serve.EventRefresh, serve.EventShare, serve.EventCheckpoint} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
}
