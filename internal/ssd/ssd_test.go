package ssd

import (
	"testing"
	"time"
)

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{TLC(), SLC(), QLC()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
		if p.WriteLatency <= p.ReadLatency {
			t.Errorf("%s: write latency should exceed read latency", p.Name)
		}
	}
	tlc := TLC()
	if tlc.ReadLatency != 75*time.Microsecond || tlc.WriteLatency != 900*time.Microsecond {
		t.Errorf("TLC latencies = %v/%v, want 75us/900us", tlc.ReadLatency, tlc.WriteLatency)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Error("zero profile accepted")
	}
	if err := (Profile{ReadLatency: time.Microsecond}).Validate(); err == nil {
		t.Error("zero write latency accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Profile{}, 4); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := New(TLC(), 0); err == nil {
		t.Error("zero channels accepted")
	}
}

func TestAccessLatencies(t *testing.T) {
	d, err := New(TLC(), 8)
	if err != nil {
		t.Fatal(err)
	}
	done := d.Access(OpRead, 0, 0)
	if done != 75_000 {
		t.Errorf("read done at %d ns, want 75000", done)
	}
	done = d.Access(OpWrite, 1, 0)
	if done != 900_000 {
		t.Errorf("write done at %d ns, want 900000", done)
	}
	if d.ReadPenalty() != 75_000 || d.WritePenalty() != 900_000 {
		t.Error("penalty constants wrong")
	}
}

func TestChannelQueueing(t *testing.T) {
	d, err := New(TLC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two reads to the same channel (pages 0 and 2 both map to channel 0).
	first := d.Access(OpRead, 0, 0)
	second := d.Access(OpRead, 2, 0)
	if second != first+75_000 {
		t.Errorf("queued read done at %d, want %d", second, first+75_000)
	}
	// A read on the other channel proceeds in parallel.
	other := d.Access(OpRead, 1, 0)
	if other != 75_000 {
		t.Errorf("independent channel done at %d, want 75000", other)
	}
}

func TestQueueingOnlyWhenBusy(t *testing.T) {
	d, _ := New(TLC(), 1)
	d.Access(OpRead, 0, 0)
	// Issue after the channel is free again: no queueing.
	done := d.Access(OpRead, 0, 200_000)
	if done != 275_000 {
		t.Errorf("done = %d, want 275000", done)
	}
	st := d.Stats()
	if st.Reads != 2 {
		t.Errorf("reads = %d", st.Reads)
	}
	if st.MeanQueueingDelay != 0 {
		t.Errorf("unexpected queueing delay %v", st.MeanQueueingDelay)
	}
}

func TestStats(t *testing.T) {
	d, _ := New(TLC(), 4)
	d.Access(OpRead, 0, 0)
	d.Access(OpWrite, 1, 0)
	d.Access(OpRead, 2, 0)
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanReadLatency != 75*time.Microsecond {
		t.Errorf("mean read latency = %v", st.MeanReadLatency)
	}
	if st.MeanWriteLatency != 900*time.Microsecond {
		t.Errorf("mean write latency = %v", st.MeanWriteLatency)
	}
	if d.Channels() != 4 || d.Profile().Name != "tlc" {
		t.Error("accessors wrong")
	}
}
