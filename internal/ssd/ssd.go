// Package ssd implements the SSD access-latency emulator that backs the
// expanded memory space. The paper's FPGA prototype contains exactly such an
// emulator inside the cache control engine (Sec. 4.2): on a cache miss the
// dataflow pauses for a configured device response time. This package is a
// faithful port of that emulator with added queueing and wear statistics.
package ssd

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Profile holds the latency characteristics of one storage technology.
type Profile struct {
	Name string
	// ReadLatency is the average page (4 KiB) read latency.
	ReadLatency time.Duration
	// WriteLatency is the average page program latency.
	WriteLatency time.Duration
}

// TLC returns the paper's target device: TLC NAND with 75 us reads and
// 900 us writes (Sec. 5.1, after OSTEP's device tables).
func TLC() Profile {
	return Profile{Name: "tlc", ReadLatency: 75 * time.Microsecond, WriteLatency: 900 * time.Microsecond}
}

// SLC returns a fast single-level-cell profile.
func SLC() Profile {
	return Profile{Name: "slc", ReadLatency: 25 * time.Microsecond, WriteLatency: 200 * time.Microsecond}
}

// QLC returns a slow quad-level-cell profile.
func QLC() Profile {
	return Profile{Name: "qlc", ReadLatency: 120 * time.Microsecond, WriteLatency: 3 * time.Millisecond}
}

// Validate checks the profile is usable.
func (p Profile) Validate() error {
	if p.ReadLatency <= 0 || p.WriteLatency <= 0 {
		return errors.New("ssd: non-positive latency")
	}
	return nil
}

// Op is the request kind presented to the device.
type Op uint8

const (
	// OpRead fetches one page.
	OpRead Op = iota
	// OpWrite programs one page.
	OpWrite
)

// Device emulates a multi-channel SSD. Requests are routed to channels by
// page index; each channel serializes its requests, so a burst to one
// channel queues while independent channels proceed in parallel. Time is
// virtual: callers supply the issue time and receive the completion time.
type Device struct {
	profile  Profile
	channels []int64 // per-channel busy-until, virtual ns
	reads    stats.Counter
	writes   stats.Counter
	readLat  stats.LatencyAccumulator
	writeLat stats.LatencyAccumulator
	queued   stats.LatencyAccumulator // queueing delay component
}

// New creates a device with the given profile and channel count.
func New(profile Profile, channels int) (*Device, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if channels <= 0 {
		return nil, fmt.Errorf("ssd: invalid channel count %d", channels)
	}
	return &Device{
		profile:  profile,
		channels: make([]int64, channels),
	}, nil
}

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.profile }

// Channels returns the channel count.
func (d *Device) Channels() int { return len(d.channels) }

// Access issues one page request at virtual time nowNs and returns the
// completion time. The latency experienced by the caller is done - nowNs:
// the device service time plus any queueing behind earlier requests on the
// same channel.
func (d *Device) Access(op Op, page uint64, nowNs int64) (doneNs int64) {
	ch := int(page % uint64(len(d.channels)))
	start := nowNs
	if d.channels[ch] > start {
		start = d.channels[ch]
	}
	d.queued.Observe(start - nowNs)

	var service int64
	switch op {
	case OpWrite:
		service = d.profile.WriteLatency.Nanoseconds()
		d.writes.Inc()
		d.writeLat.Observe(start + service - nowNs)
	default:
		service = d.profile.ReadLatency.Nanoseconds()
		d.reads.Inc()
		d.readLat.Observe(start + service - nowNs)
	}
	done := start + service
	d.channels[ch] = done
	return done
}

// State is the device's full mutable state: per-channel busy horizons on
// the virtual clock plus the accumulated counters. Part of the serving
// subsystem's checkpoint surface.
type State struct {
	Channels []int64                `json:"channels"`
	Reads    uint64                 `json:"reads"`
	Writes   uint64                 `json:"writes"`
	ReadLat  stats.AccumulatorState `json:"read_lat"`
	WriteLat stats.AccumulatorState `json:"write_lat"`
	Queued   stats.AccumulatorState `json:"queued"`
}

// State exports the device's mutable state.
func (d *Device) State() State {
	return State{
		Channels: append([]int64(nil), d.channels...),
		Reads:    d.reads.Value(),
		Writes:   d.writes.Value(),
		ReadLat:  d.readLat.State(),
		WriteLat: d.writeLat.State(),
		Queued:   d.queued.State(),
	}
}

// RestoreState replaces the device's mutable state. The channel count must
// match the configuration.
func (d *Device) RestoreState(s State) error {
	if len(s.Channels) != len(d.channels) {
		return fmt.Errorf("ssd: state has %d channels, device has %d", len(s.Channels), len(d.channels))
	}
	copy(d.channels, s.Channels)
	d.reads.Reset()
	d.reads.Add(s.Reads)
	d.writes.Reset()
	d.writes.Add(s.Writes)
	d.readLat.RestoreState(s.ReadLat)
	d.writeLat.RestoreState(s.WriteLat)
	d.queued.RestoreState(s.Queued)
	return nil
}

// ReadPenalty returns the nominal read service time in nanoseconds, the
// constant the latency model uses when queueing is not simulated.
func (d *Device) ReadPenalty() int64 { return d.profile.ReadLatency.Nanoseconds() }

// WritePenalty returns the nominal write service time in nanoseconds.
func (d *Device) WritePenalty() int64 { return d.profile.WriteLatency.Nanoseconds() }

// Stats describes accumulated device activity.
type Stats struct {
	Reads, Writes     uint64
	MeanReadLatency   time.Duration
	MeanWriteLatency  time.Duration
	MeanQueueingDelay time.Duration
}

// Stats returns a snapshot of device counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:             d.reads.Value(),
		Writes:            d.writes.Value(),
		MeanReadLatency:   d.readLat.MeanDuration(),
		MeanWriteLatency:  d.writeLat.MeanDuration(),
		MeanQueueingDelay: d.queued.MeanDuration(),
	}
}
