// Package cache implements the device-side DRAM page cache that ICGMM
// manages: a set-associative cache of 4 KiB blocks in front of the SSD, with
// pluggable admission and eviction policies (the "cache policy engine" of
// the paper). The cache tracks tags, dirty bits and statistics; policies
// supply the intelligence.
package cache

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// Config sizes the cache. The paper's case study uses 64 MiB capacity,
// 4 KiB blocks and 8-way associativity.
type Config struct {
	// SizeBytes is the total data capacity.
	SizeBytes uint64
	// BlockBytes is the cache block (page) size; must match the SSD access
	// granularity for the paper's setting.
	BlockBytes uint64
	// Ways is the set associativity.
	Ways int
}

// DefaultConfig returns the paper's case-study configuration.
func DefaultConfig() Config {
	return Config{
		SizeBytes:  64 << 20,
		BlockBytes: trace.PageSize,
		Ways:       8,
	}
}

// Validate checks that the geometry is self-consistent.
func (c Config) Validate() error {
	if c.SizeBytes == 0 || c.BlockBytes == 0 || c.Ways <= 0 {
		return errors.New("cache: zero-valued geometry")
	}
	blocks := c.SizeBytes / c.BlockBytes
	if blocks == 0 {
		return errors.New("cache: capacity smaller than one block")
	}
	if blocks%uint64(c.Ways) != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, c.Ways)
	}
	return nil
}

// NumBlocks returns the total block count.
func (c Config) NumBlocks() uint64 { return c.SizeBytes / c.BlockBytes }

// NumSets returns the number of sets.
func (c Config) NumSets() uint64 { return c.NumBlocks() / uint64(c.Ways) }

// Request is one page-granular access presented to the cache.
type Request struct {
	// Page is the 4 KiB page index (trace.Record.Page()).
	Page uint64
	// Write marks store requests; they dirty the block on hit or insert.
	Write bool
	// Seq is the arrival index of the request, the clock policies use.
	Seq uint64
}

// BlockView is the read-only view of one way a policy sees when choosing a
// victim.
type BlockView struct {
	Page  uint64
	Valid bool
	Dirty bool
}

// Policy is the cache policy engine interface. The cache calls OnAccess for
// every request, then either OnHit, or (on a miss) Admit followed — when the
// page is admitted — by Victim/OnEvict/OnInsert as needed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Attach tells the policy the cache geometry before any traffic.
	Attach(numSets, ways int)
	// OnAccess observes every request in arrival order, before lookup.
	OnAccess(req Request)
	// OnHit reports a hit on the given set/way.
	OnHit(setIdx, way int, req Request)
	// Admit decides whether a missed page is worth caching. Traditional
	// policies return true unconditionally; ICGMM's smart caching declines
	// pages whose GMM score falls below the threshold.
	Admit(req Request) bool
	// Victim picks the way to evict from a full set. Returning a negative
	// way vetoes the insertion: the cache abandons the admission and counts
	// the access as a bypass. Capacity-constrained policies use the veto
	// when every candidate way is off-limits (e.g. a tenant restricted to
	// replacing its own blocks finds none), so a policy/accounting mismatch
	// can never force an eviction that breaks a capacity invariant.
	Victim(setIdx int, blocks []BlockView) int
	// OnEvict reports that the page at set/way is being evicted.
	OnEvict(setIdx, way int, page uint64)
	// OnInsert reports that req.Page now occupies set/way.
	OnInsert(setIdx, way int, req Request)
}

// Stats aggregates cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Bypasses   uint64 // misses where the policy declined admission
	Evictions  uint64
	WriteBacks uint64 // evictions of dirty blocks
	Inserts    uint64
}

// Accesses returns the total request count.
func (s Stats) Accesses() uint64 { return s.Hits + s.Misses }

// MissRate returns misses/accesses in [0, 1].
func (s Stats) MissRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses())
}

// HitRate returns hits/accesses in [0, 1].
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses())
}

type block struct {
	page  uint64
	valid bool
	dirty bool
}

// AccessResult describes what one access did, driving the latency model.
type AccessResult struct {
	Hit bool
	// Admitted is set when a missed page was inserted into the cache.
	Admitted bool
	// Evicted is set when an insert displaced a valid block.
	Evicted bool
	// VictimPage is the displaced page (valid only when Evicted).
	VictimPage uint64
	// WriteBack is set when the displaced block was dirty and must be
	// written to the SSD.
	WriteBack bool
}

// Cache is a set-associative page cache with an attached policy engine.
type Cache struct {
	cfg    Config
	sets   [][]block
	policy Policy
	seq    uint64
	stats  Stats
	views  []BlockView // scratch buffer for Victim calls
}

// New builds a cache with the given geometry and policy engine.
func New(cfg Config, policy Policy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, errors.New("cache: nil policy")
	}
	numSets := cfg.NumSets()
	sets := make([][]block, numSets)
	for i := range sets {
		sets[i] = make([]block, cfg.Ways)
	}
	policy.Attach(int(numSets), cfg.Ways)
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		policy: policy,
		views:  make([]BlockView, cfg.Ways),
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Policy returns the attached policy engine.
func (c *Cache) Policy() Policy { return c.policy }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// setIndex maps a page to its set.
func (c *Cache) setIndex(page uint64) int {
	return int(page % c.cfg.NumSets())
}

// Access presents one page request to the cache and returns what happened.
func (c *Cache) Access(page uint64, write bool) AccessResult {
	req := Request{Page: page, Write: write, Seq: c.seq}
	c.seq++
	c.policy.OnAccess(req)

	si := c.setIndex(page)
	set := c.sets[si]

	// Hit path: all tags in the set are compared (in hardware this is the
	// parallel comparison of Sec. 4.2; here a linear scan over <=8 ways).
	for w := range set {
		if set[w].valid && set[w].page == page {
			if write {
				set[w].dirty = true
			}
			c.stats.Hits++
			c.policy.OnHit(si, w, req)
			return AccessResult{Hit: true}
		}
	}

	// Miss path.
	c.stats.Misses++
	if !c.policy.Admit(req) {
		c.stats.Bypasses++
		return AccessResult{}
	}

	// Prefer an invalid way.
	way := -1
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
	}
	res := AccessResult{Admitted: true}
	if way == -1 {
		for w := range set {
			c.views[w] = BlockView{Page: set[w].page, Valid: set[w].valid, Dirty: set[w].dirty}
		}
		way = c.policy.Victim(si, c.views)
		if way < 0 {
			// The policy vetoed every candidate: abandon the admission and
			// count the miss as a bypass (see Policy.Victim).
			c.stats.Bypasses++
			return AccessResult{}
		}
		if way >= c.cfg.Ways {
			// A broken policy must not corrupt the cache; fall back to way 0.
			way = 0
		}
		res.Evicted = true
		res.VictimPage = set[way].page
		res.WriteBack = set[way].dirty
		c.stats.Evictions++
		if set[way].dirty {
			c.stats.WriteBacks++
		}
		c.policy.OnEvict(si, way, set[way].page)
	}

	set[way] = block{page: page, valid: true, dirty: write}
	c.stats.Inserts++
	c.policy.OnInsert(si, way, req)
	return res
}

// EvictAt invalidates the valid block at (setIdx, way), notifying the policy
// through OnEvict and counting the eviction (plus a write-back when the block
// was dirty). It returns the evicted page and dirty bit; ok is false — and
// nothing changes — when the coordinates are out of range or the slot is
// already invalid. This is the policy-initiated eviction primitive behind the
// serving subsystem's elastic capacity shares: a tenant whose share shrank at
// a batch boundary has its overflow blocks evicted here, and an at-budget
// tenant releases its coldest block before admitting into a set where it owns
// nothing. It is safe to call from inside Policy.Admit on a set other than
// the one being accessed, and on the accessed set itself as long as the
// policy accounts for the freed way.
func (c *Cache) EvictAt(setIdx, way int) (page uint64, dirty, ok bool) {
	if setIdx < 0 || setIdx >= len(c.sets) || way < 0 || way >= c.cfg.Ways {
		return 0, false, false
	}
	b := &c.sets[setIdx][way]
	if !b.valid {
		return 0, false, false
	}
	page, dirty = b.page, b.dirty
	c.stats.Evictions++
	if dirty {
		c.stats.WriteBacks++
	}
	c.policy.OnEvict(setIdx, way, page)
	*b = block{}
	return page, dirty, true
}

// Scan calls fn for every valid block in set order, ways within a set in way
// order (no side effects). The serving subsystem uses it to rescore resident
// blocks when a refreshed model lands: stored scores from the previous model
// live on a different density scale, and comparing across scales during
// eviction would make stale blocks immortal.
func (c *Cache) Scan(fn func(setIdx, way int, page uint64, dirty bool)) {
	for si, set := range c.sets {
		for w, b := range set {
			if b.valid {
				fn(si, w, b.page, b.dirty)
			}
		}
	}
}

// Contains reports whether the page is currently cached (no side effects).
func (c *Cache) Contains(page uint64) bool {
	set := c.sets[c.setIndex(page)]
	for _, b := range set {
		if b.valid && b.page == page {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid blocks.
func (c *Cache) Occupancy() uint64 {
	var n uint64
	for _, set := range c.sets {
		for _, b := range set {
			if b.valid {
				n++
			}
		}
	}
	return n
}

// DirtyBlocks returns the number of valid dirty blocks.
func (c *Cache) DirtyBlocks() uint64 {
	var n uint64
	for _, set := range c.sets {
		for _, b := range set {
			if b.valid && b.dirty {
				n++
			}
		}
	}
	return n
}

// Flush invalidates every block, returning how many dirty blocks a real
// system would have written back.
func (c *Cache) Flush() uint64 {
	dirty := c.DirtyBlocks()
	for si := range c.sets {
		for w := range c.sets[si] {
			c.sets[si][w] = block{}
		}
	}
	return dirty
}

// BlockState is the exported state of one way, as Dump reports it.
type BlockState struct {
	Page  uint64 `json:"page,omitempty"`
	Valid bool   `json:"valid,omitempty"`
	Dirty bool   `json:"dirty,omitempty"`
}

// State is a complete dump of the cache's mutable contents: every way of
// every set, the policy clock, and the accumulated statistics. The serving
// subsystem's checkpoint carries one per partition; the attached policy's
// own state (scores, owners) is serialized by its owner, not here.
type State struct {
	Sets  [][]BlockState `json:"sets"`
	Seq   uint64         `json:"seq"`
	Stats Stats          `json:"stats"`
}

// Dump exports the cache contents (set order, ways within a set in way
// order). No policy callbacks fire.
func (c *Cache) Dump() State {
	st := State{Sets: make([][]BlockState, len(c.sets)), Seq: c.seq, Stats: c.stats}
	for si, set := range c.sets {
		row := make([]BlockState, len(set))
		for w, b := range set {
			row[w] = BlockState{Page: b.page, Valid: b.valid, Dirty: b.dirty}
		}
		st.Sets[si] = row
	}
	return st
}

// LoadDump replaces the cache's mutable contents with a previously Dumped
// state. The geometry must match, and every valid page must map to the set
// it is stored in (so a corrupted or mismatched dump cannot produce a cache
// that violates its own indexing). No policy callbacks fire: the caller is
// responsible for restoring the policy's state to match, exactly as Dump
// left the two out of each other's way.
func (c *Cache) LoadDump(st State) error {
	if len(st.Sets) != len(c.sets) {
		return fmt.Errorf("cache: dump has %d sets, cache has %d", len(st.Sets), len(c.sets))
	}
	for si, row := range st.Sets {
		if len(row) != c.cfg.Ways {
			return fmt.Errorf("cache: dump set %d has %d ways, cache has %d", si, len(row), c.cfg.Ways)
		}
		for _, b := range row {
			if b.Valid && c.setIndex(b.Page) != si {
				return fmt.Errorf("cache: dump stores page %d in set %d, it belongs to set %d", b.Page, si, c.setIndex(b.Page))
			}
		}
	}
	for si, row := range st.Sets {
		for w, b := range row {
			c.sets[si][w] = block{page: b.Page, valid: b.Valid, dirty: b.Dirty}
		}
	}
	// The per-block checks above cannot see cross-block corruption (the same
	// valid page in two ways of one set); run the full structural audit so a
	// tampered dump fails the load instead of resuming silently wrong. The
	// caller abandons the cache on error, so the partial mutation is moot.
	if err := c.CheckInvariants(); err != nil {
		return err
	}
	c.seq = st.Seq
	c.stats = st.Stats
	return nil
}

// CheckInvariants verifies structural invariants: no duplicate valid pages
// within a set and every valid page mapping to its own set. Tests call it
// after traffic; it is not on the hot path.
func (c *Cache) CheckInvariants() error {
	for si, set := range c.sets {
		seen := make(map[uint64]bool, len(set))
		for _, b := range set {
			if !b.valid {
				continue
			}
			if seen[b.page] {
				return fmt.Errorf("cache: page %d duplicated in set %d", b.page, si)
			}
			seen[b.page] = true
			if c.setIndex(b.page) != si {
				return fmt.Errorf("cache: page %d stored in wrong set %d", b.page, si)
			}
		}
	}
	return nil
}
