package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// lruStub is a minimal LRU policy local to the package tests, avoiding an
// import cycle with internal/policy.
type lruStub struct {
	lastUse [][]uint64
	admit   bool
}

func newLRUStub() *lruStub { return &lruStub{admit: true} }

func (p *lruStub) Name() string { return "lru-stub" }
func (p *lruStub) Attach(numSets, ways int) {
	p.lastUse = make([][]uint64, numSets)
	for i := range p.lastUse {
		p.lastUse[i] = make([]uint64, ways)
	}
}
func (p *lruStub) OnAccess(Request) {}
func (p *lruStub) OnHit(s, w int, r Request) {
	p.lastUse[s][w] = r.Seq
}
func (p *lruStub) Admit(Request) bool { return p.admit }
func (p *lruStub) Victim(s int, blocks []BlockView) int {
	best, bestUse := 0, p.lastUse[s][0]
	for w := 1; w < len(blocks); w++ {
		if p.lastUse[s][w] < bestUse {
			best, bestUse = w, p.lastUse[s][w]
		}
	}
	return best
}
func (p *lruStub) OnEvict(int, int, uint64) {}
func (p *lruStub) OnInsert(s, w int, r Request) {
	p.lastUse[s][w] = r.Seq
}

func smallCache(t *testing.T) *Cache {
	t.Helper()
	// 4 sets x 2 ways x 4 KiB blocks.
	c, err := New(Config{SizeBytes: 8 * 4096, BlockBytes: 4096, Ways: 2}, newLRUStub())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		{SizeBytes: 4096, BlockBytes: 4096, Ways: 0},
		{SizeBytes: 4096, BlockBytes: 8192, Ways: 1},
		{SizeBytes: 3 * 4096, BlockBytes: 4096, Ways: 2}, // not divisible
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumBlocks() != 16384 {
		t.Errorf("NumBlocks = %d, want 16384", cfg.NumBlocks())
	}
	if cfg.NumSets() != 2048 {
		t.Errorf("NumSets = %d, want 2048", cfg.NumSets())
	}
}

func TestNewRejectsNilPolicy(t *testing.T) {
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallCache(t)
	res := c.Access(100, false)
	if res.Hit {
		t.Error("cold access reported hit")
	}
	if !res.Admitted {
		t.Error("cold miss not admitted")
	}
	res = c.Access(100, false)
	if !res.Hit {
		t.Error("second access missed")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDirtyWriteBack(t *testing.T) {
	c := smallCache(t)
	// Set 0 holds pages 0, 4, 8, ... (page % 4). Fill set 0's two ways.
	c.Access(0, true) // dirty
	c.Access(4, false)
	// Third distinct page in set 0 forces eviction of page 0 (LRU), dirty.
	res := c.Access(8, false)
	if !res.Evicted || res.VictimPage != 0 {
		t.Fatalf("eviction result = %+v", res)
	}
	if !res.WriteBack {
		t.Error("dirty victim did not write back")
	}
	st := c.Stats()
	if st.WriteBacks != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWriteHitDirtiesBlock(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false)
	if c.DirtyBlocks() != 0 {
		t.Fatal("clean insert marked dirty")
	}
	c.Access(0, true)
	if c.DirtyBlocks() != 1 {
		t.Error("write hit did not dirty the block")
	}
}

func TestBypassOnAdmitFalse(t *testing.T) {
	p := newLRUStub()
	p.admit = false
	c, err := New(Config{SizeBytes: 8 * 4096, BlockBytes: 4096, Ways: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Access(1, false)
	if res.Admitted || res.Hit {
		t.Errorf("bypassed access = %+v", res)
	}
	if c.Occupancy() != 0 {
		t.Error("bypassed page was inserted")
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false) // set 0
	c.Access(4, false) // set 0
	c.Access(0, false) // refresh page 0
	res := c.Access(8, false)
	if res.VictimPage != 4 {
		t.Errorf("victim = %d, want 4 (LRU)", res.VictimPage)
	}
	if !c.Contains(0) || !c.Contains(8) || c.Contains(4) {
		t.Error("cache contents wrong after eviction")
	}
}

func TestOccupancyAndFlush(t *testing.T) {
	c := smallCache(t)
	for p := uint64(0); p < 8; p++ {
		c.Access(p, p%2 == 0)
	}
	if c.Occupancy() != 8 {
		t.Errorf("Occupancy = %d, want 8", c.Occupancy())
	}
	if c.DirtyBlocks() != 4 {
		t.Errorf("DirtyBlocks = %d, want 4", c.DirtyBlocks())
	}
	if flushed := c.Flush(); flushed != 4 {
		t.Errorf("Flush = %d, want 4", flushed)
	}
	if c.Occupancy() != 0 {
		t.Error("cache not empty after flush")
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Error("empty stats should report 0 rates")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 || s.HitRate() != 0.75 {
		t.Errorf("rates = %v/%v", s.MissRate(), s.HitRate())
	}
	if s.Accesses() != 4 {
		t.Errorf("Accesses = %d", s.Accesses())
	}
}

func TestBrokenPolicyVictimClamped(t *testing.T) {
	p := &badVictimPolicy{}
	c, err := New(Config{SizeBytes: 2 * 4096, BlockBytes: 4096, Ways: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)
	c.Access(1, false)
	// Both ways of the single set are full; victim returns 99 → clamped.
	c.Access(2, false)
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

type badVictimPolicy struct{ lruStub }

func (p *badVictimPolicy) Victim(int, []BlockView) int { return 99 }

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	c := smallCache(t)
	c.Access(0, false)
	// Corrupt: duplicate the page into the other way of its set.
	c.sets[0][1] = block{page: 0, valid: true}
	if err := c.CheckInvariants(); err == nil {
		t.Error("duplicate page not detected")
	}
	c2 := smallCache(t)
	c2.sets[1][0] = block{page: 0, valid: true} // page 0 belongs to set 0
	if err := c2.CheckInvariants(); err == nil {
		t.Error("wrong-set page not detected")
	}
}

// Property: occupancy never exceeds capacity, invariants always hold, and
// hits+misses equals accesses under random traffic.
func TestCacheInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{SizeBytes: 32 * 4096, BlockBytes: 4096, Ways: 4}, newLRUStub())
		if err != nil {
			return false
		}
		n := uint64(0)
		for i := 0; i < 3000; i++ {
			c.Access(uint64(rng.Intn(200)), rng.Intn(3) == 0)
			n++
		}
		st := c.Stats()
		if st.Accesses() != n {
			return false
		}
		if c.Occupancy() > c.Config().NumBlocks() {
			return false
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRepeatedAccessSamePageNoEviction(t *testing.T) {
	c := smallCache(t)
	for i := 0; i < 100; i++ {
		c.Access(7, i%2 == 0)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 99 || st.Evictions != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScanVisitsEveryValidBlock(t *testing.T) {
	c := smallCache(t)
	// Pages 0..5 land in sets 0..3 (page%4) without filling every way.
	for p := uint64(0); p < 6; p++ {
		c.Access(p, p%2 == 0)
	}
	seen := map[uint64]bool{}
	lastSet, lastWay := -1, -1
	c.Scan(func(set, way int, page uint64, dirty bool) {
		if set < lastSet || (set == lastSet && way <= lastWay) {
			t.Fatalf("scan order not (set, way) increasing: (%d,%d) after (%d,%d)", set, way, lastSet, lastWay)
		}
		lastSet, lastWay = set, way
		if seen[page] {
			t.Fatalf("page %d visited twice", page)
		}
		seen[page] = true
		if !c.Contains(page) {
			t.Fatalf("scan reported non-resident page %d", page)
		}
		if dirty != (page%2 == 0) {
			t.Fatalf("page %d dirty = %v", page, dirty)
		}
	})
	if uint64(len(seen)) != c.Occupancy() {
		t.Fatalf("scan visited %d blocks, occupancy %d", len(seen), c.Occupancy())
	}
}

// vetoPolicy admits everything but vetoes every eviction — the
// Victim-returns-negative contract for capacity-restricted policies.
type vetoPolicy struct{ lruStub }

func (p *vetoPolicy) Admit(Request) bool          { return true }
func (p *vetoPolicy) Victim(int, []BlockView) int { return -1 }

// TestVictimVetoBecomesBypass: a negative Victim return abandons the
// admission — the access counts as a bypass, nothing is evicted, and the
// cache stays intact.
func TestVictimVetoBecomesBypass(t *testing.T) {
	p := &vetoPolicy{}
	c, err := New(Config{SizeBytes: 2 * 4096, BlockBytes: 4096, Ways: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false)
	c.Access(1, false)
	// Single set is full; the veto must deny the third page.
	res := c.Access(2, false)
	if res.Admitted || res.Evicted {
		t.Fatalf("vetoed insertion still happened: %+v", res)
	}
	st := c.Stats()
	if st.Bypasses != 1 || st.Evictions != 0 || st.Inserts != 2 {
		t.Fatalf("stats after veto = %+v", st)
	}
	if !c.Contains(0) || !c.Contains(1) || c.Contains(2) {
		t.Fatal("veto changed the resident set")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// evictRecorder counts OnEvict callbacks so EvictAt's policy notification is
// observable.
type evictRecorder struct {
	lruStub
	evicted []uint64
}

func (p *evictRecorder) OnEvict(_, _ int, page uint64) { p.evicted = append(p.evicted, page) }

// TestEvictAt: the policy-initiated eviction primitive invalidates exactly
// the addressed block, notifies the policy, counts the eviction (and the
// write-back for dirty blocks), and rejects invalid coordinates or empty
// slots without side effects.
func TestEvictAt(t *testing.T) {
	p := &evictRecorder{lruStub: *newLRUStub()}
	c, err := New(Config{SizeBytes: 8 * 4096, BlockBytes: 4096, Ways: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false) // set 0 way 0, clean
	c.Access(4, true)  // set 0 way 1, dirty
	page, dirty, ok := c.EvictAt(0, 1)
	if !ok || page != 4 || !dirty {
		t.Fatalf("EvictAt(0,1) = (%d,%v,%v), want (4,true,true)", page, dirty, ok)
	}
	if c.Contains(4) || !c.Contains(0) {
		t.Fatal("EvictAt removed the wrong block")
	}
	if len(p.evicted) != 1 || p.evicted[0] != 4 {
		t.Fatalf("policy saw evictions %v, want [4]", p.evicted)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.WriteBacks != 1 {
		t.Fatalf("stats after dirty EvictAt = %+v", st)
	}
	// Clean eviction: no write-back.
	if _, dirty, ok := c.EvictAt(0, 0); !ok || dirty {
		t.Fatal("clean EvictAt misreported")
	}
	if st := c.Stats(); st.Evictions != 2 || st.WriteBacks != 1 {
		t.Fatalf("stats after clean EvictAt = %+v", st)
	}
	// Empty slot and out-of-range coordinates: no-ops.
	for _, co := range [][2]int{{0, 0}, {-1, 0}, {0, -1}, {99, 0}, {0, 99}} {
		if _, _, ok := c.EvictAt(co[0], co[1]); ok {
			t.Errorf("EvictAt(%d,%d) succeeded on an invalid target", co[0], co[1])
		}
	}
	if st := c.Stats(); st.Evictions != 2 {
		t.Fatalf("no-op EvictAt mutated stats: %+v", st)
	}
	if c.Occupancy() != 0 {
		t.Fatalf("occupancy = %d after evicting both blocks", c.Occupancy())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
