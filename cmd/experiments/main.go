// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp fig6            # miss-rate comparison (Fig. 6)
//	experiments -exp table1          # average SSD access time (Table 1)
//	experiments -exp table2          # policy engine hardware cost (Table 2)
//	experiments -exp fig2            # access-distribution CSVs (Fig. 2)
//	experiments -exp ablation-k      # sweep of GMM component count
//	experiments -exp ablation-1d     # 2-D vs spatial-only GMM
//	experiments -exp ablation-threshold
//	experiments -exp ablation-window
//	experiments -exp overlap         # dataflow overlap ablation
//	experiments -exp all             # everything above
//	experiments -grid sweep.json     # run a JSON scenario grid
//
// Flags -n, -seed, -bench restrict the trace length, generator seed and
// benchmark set. -workers shards experiment tasks over a worker pool
// (0 = one per core; results are bit-identical at any worker count), and
// -grid runs a workload × policy × cache × seed scenario file through the
// same engine. With -out results.jsonl (or .csv), grid results stream to the
// file incrementally in grid order instead of buffering the whole sweep in
// memory — the mode for sweeps of thousands of cells.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig2|fig6|table1|table2|eval|repeat|grid|ablation-k|ablation-1d|ablation-threshold|ablation-window|ablation-precision|overlap|all")
		n       = flag.Int("n", 600_000, "requests per benchmark trace")
		seed    = flag.Int64("seed", 1, "workload generator seed")
		seeds   = flag.Int("seeds", 3, "seed count for -exp repeat")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default all)")
		outd    = flag.String("out", "", "fig2: directory for CSV output; grid: stream results incrementally to this .jsonl/.ndjson/.csv file instead of buffering the sweep")
		workers = flag.Int("workers", 0, "experiment worker pool size (0 = one per core, 1 = sequential)")
		gridP   = flag.String("grid", "", "JSON scenario grid file; implies -exp grid")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Requests = *n
	o.Seed = *seed
	o.Config.Workers = *workers
	if *bench != "" {
		o.Benchmarks = strings.Split(*bench, ",")
	}
	if *gridP != "" {
		*exp = "grid"
	}

	if err := run(*exp, o, *outd, *gridP, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, o experiments.Options, outDir, gridPath string, nSeeds int) error {
	switch exp {
	case "fig2":
		return runFig2(o, outDir)
	case "fig6", "table1", "eval":
		cmps, err := experiments.RunAll(o, os.Stderr)
		if err != nil {
			return err
		}
		if exp == "fig6" || exp == "eval" {
			fmt.Println(experiments.Fig6Table(cmps))
		}
		if exp == "table1" || exp == "eval" {
			fmt.Println(experiments.Table1(cmps))
		}
		return nil
	case "table2":
		fmt.Println(experiments.Table2())
		return nil
	case "repeat":
		list := make([]int64, nSeeds)
		for i := range list {
			list[i] = int64(i + 1)
		}
		rs, err := experiments.RunRepeated(o, list, os.Stderr)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RepeatedTable(rs))
		return nil
	case "grid":
		if gridPath == "" {
			return fmt.Errorf("-exp grid needs -grid <file.json>")
		}
		if outDir != "" {
			// Stream scenario results to the file as they finish instead of
			// buffering the whole sweep; rows land in grid order. Validate
			// the format before creating the file so a typoed extension
			// does not leave an empty file behind.
			if _, err := experiments.SinkForPath(outDir, io.Discard); err != nil {
				return err
			}
			f, err := os.Create(outDir)
			if err != nil {
				return err
			}
			defer f.Close()
			sink, err := experiments.SinkForPath(outDir, f)
			if err != nil {
				return err
			}
			n, err := experiments.RunGridFileStream(gridPath, o, sink, os.Stderr)
			if err != nil {
				return err
			}
			fmt.Printf("streamed %d scenarios to %s\n", n, outDir)
			return nil
		}
		results, err := experiments.RunGridFile(gridPath, o, os.Stderr)
		if err != nil {
			return err
		}
		fmt.Println(experiments.GridTable(results))
		return nil
	case "ablation-k":
		t, err := experiments.AblationK(o, []int{8, 16, 32, 64, 128, 256})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "ablation-1d":
		t, err := experiments.Ablation1D(o)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "ablation-threshold":
		t, err := experiments.AblationThreshold(o, []float64{0, 0.05, 0.1, 0.2, 0.4})
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "ablation-window":
		t, err := experiments.AblationWindow(o)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "ablation-precision":
		t, err := experiments.AblationPrecision(o)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "overlap":
		t, err := experiments.OverlapAblation(o)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	case "all":
		for _, e := range []string{"fig2", "fig6", "table1", "table2", "ablation-k", "ablation-1d", "ablation-threshold", "ablation-window", "ablation-precision", "overlap"} {
			fmt.Printf("### %s\n\n", e)
			if err := run(e, o, outDir, gridPath, nSeeds); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func runFig2(o experiments.Options, outDir string) error {
	names := o.Benchmarks
	if len(names) == 0 {
		// The paper's Fig. 2 shows dlrm, parsec and sysbench.
		names = []string{"dlrm", "parsec", "sysbench"}
	}
	for _, name := range names {
		spatial, temporal, err := experiments.Fig2Series(name, o.Requests, o.Seed, 64, 2000)
		if err != nil {
			return err
		}
		if outDir == "" {
			fmt.Printf("--- %s spatial (first 10 bins) ---\n", name)
			for i := 0; i < 10 && i < spatial.Len(); i++ {
				fmt.Printf("%12.0f %8.0f\n", spatial.X[i], spatial.Y[i])
			}
			continue
		}
		if err := os.WriteFile(
			fmt.Sprintf("%s/fig2-%s-spatial.csv", outDir, name),
			[]byte(spatial.CSV()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(
			fmt.Sprintf("%s/fig2-%s-temporal.csv", outDir, name),
			[]byte(temporal.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
