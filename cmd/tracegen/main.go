// Command tracegen generates synthetic benchmark traces in the binary or
// CSV container understood by the rest of the toolchain.
//
// Usage:
//
//	tracegen -bench dlrm -n 1000000 -seed 1 -o dlrm.trace
//	tracegen -bench parsec -n 500000 -format csv -o parsec.csv
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark name (see -list)")
		n      = flag.Int("n", 1_000_000, "number of requests")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "binary", "output format: binary|csv")
		list   = flag.Bool("list", false, "list available benchmarks")
		stat   = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	if *list {
		for _, g := range workload.Registry() {
			fmt.Println(g.Name())
		}
		return
	}
	if err := run(*bench, *n, *seed, *out, *format, *stat); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(bench string, n int, seed int64, out, format string, stat bool) error {
	g, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	tr := g.Generate(n, seed)

	if stat {
		s := trace.Summarize(tr)
		fmt.Fprintf(os.Stderr,
			"%s: %d records, %.1f%% reads, %d unique pages (%.1f MiB footprint)\n",
			bench, s.Records, 100*s.ReadFraction(), s.UniquePages,
			float64(s.FootprintBytes)/(1<<20))
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "binary":
		return trace.WriteBinary(w, tr)
	case "csv":
		return trace.WriteCSV(w, tr)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
