// Command icgmm-sim runs the end-to-end ICGMM system simulation on a trace:
// it trains (or loads) the GMM policy engine, drives the trace through the
// DRAM cache with the paper's latency model, and reports miss rate and
// average memory access latency.
//
// Usage:
//
//	icgmm-sim -trace dlrm.trace -policy gmm-caching-eviction
//	icgmm-sim -bench dlrm -n 500000 -policy lru
//	icgmm-sim -bench stream -policy all        # Fig. 6-style comparison
//	icgmm-sim -bench dlrm -model dlrm.gmm -policy gmm-eviction-only
//	icgmm-sim -grid sweep.json -workers 8      # scenario grid on 8 workers
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gmm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "input trace file (binary format)")
		bench     = flag.String("bench", "", "generate this benchmark instead of reading a trace")
		n         = flag.Int("n", 500_000, "requests when generating")
		seed      = flag.Int64("seed", 1, "generator seed")
		pol       = flag.String("policy", "all", "lru|fifo|lfu|random|clock|slru|srrip|belady|belady-bypass|gmm-caching-only|gmm-eviction-only|gmm-caching-eviction|all")
		modelPath = flag.String("model", "", "pre-trained GMM model (JSON); trains in-process when empty")
		cacheMB   = flag.Int("cache-mb", 64, "cache size in MiB")
		ways      = flag.Int("ways", 8, "cache associativity")
		k         = flag.Int("k", 256, "GMM components when training in-process")
		noOverlap = flag.Bool("no-overlap", false, "serialize GMM inference after SSD access")
		workers   = flag.Int("workers", 0, "simulation worker pool size (0 = one per core, 1 = sequential)")
		gridP     = flag.String("grid", "", "JSON scenario grid file; sweeps workload × policy × cache × seed")
	)
	flag.Parse()

	if *gridP != "" {
		// The grid file is the single source of truth for its scenarios;
		// refuse per-run flags that it would silently override.
		var clash []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "grid", "workers":
			default:
				clash = append(clash, "-"+f.Name)
			}
		})
		if len(clash) > 0 {
			fmt.Fprintf(os.Stderr, "icgmm-sim: -grid ignores %s; set them in the grid file instead\n",
				strings.Join(clash, ", "))
			os.Exit(1)
		}
		if err := runGrid(*gridP, *workers); err != nil {
			fmt.Fprintln(os.Stderr, "icgmm-sim:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(*tracePath, *bench, *n, *seed, *pol, *modelPath, *cacheMB, *ways, *k, *noOverlap, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "icgmm-sim:", err)
		os.Exit(1)
	}
}

// runGrid fans a scenario grid out over the experiment engine.
func runGrid(gridPath string, workers int) error {
	o := experiments.DefaultOptions()
	o.Config.Workers = workers
	results, err := experiments.RunGridFile(gridPath, o, os.Stderr)
	if err != nil {
		return err
	}
	fmt.Println(experiments.GridTable(results))
	return nil
}

func run(tracePath, bench string, n int, seed int64, pol, modelPath string, cacheMB, ways, k int, noOverlap bool, workers int) error {
	tr, err := loadTrace(tracePath, bench, n, seed)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.Cache = cache.Config{SizeBytes: uint64(cacheMB) << 20, BlockBytes: trace.PageSize, Ways: ways}
	cfg.Train.K = k
	cfg.Overlap = !noOverlap
	cfg.Workers = workers

	needGMM := pol == "all" || pol == "gmm-caching-only" ||
		pol == "gmm-eviction-only" || pol == "gmm-caching-eviction"
	var tg *core.TrainedGMM
	if needGMM {
		tg, err = trainOrLoad(tr, modelPath, cfg)
		if err != nil {
			return err
		}
	}

	if pol == "all" {
		cmp, err := core.CompareTrained(benchName(bench, tracePath), tr, tg, cfg)
		if err != nil {
			return err
		}
		report(cmp.LRU)
		report(cmp.Caching)
		report(cmp.Eviction)
		report(cmp.Combined)
		best := cmp.BestGMM()
		fmt.Printf("\nbest GMM strategy: %s (miss %.2f%% vs LRU %.2f%%, latency -%.2f%%)\n",
			best.Policy, best.MissRatePct(), cmp.LRU.MissRatePct(), cmp.LatencyReductionPct())
		return nil
	}

	p, overhead, err := buildPolicy(pol, tr, tg, cfg)
	if err != nil {
		return err
	}
	res, err := core.Run(tr, p, overhead, cfg)
	if err != nil {
		return err
	}
	report(res)
	return nil
}

func benchName(bench, tracePath string) string {
	if bench != "" {
		return bench
	}
	return tracePath
}

func loadTrace(tracePath, bench string, n int, seed int64) (trace.Trace, error) {
	switch {
	case tracePath != "":
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadBinary(f)
	case bench != "":
		g, err := workload.ByName(bench)
		if err != nil {
			return nil, err
		}
		return g.Generate(n, seed), nil
	default:
		return nil, fmt.Errorf("need -trace or -bench")
	}
}

func trainOrLoad(tr trace.Trace, modelPath string, cfg core.Config) (*core.TrainedGMM, error) {
	if modelPath == "" {
		start := time.Now()
		tg, err := core.Train(tr, cfg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "trained GMM (K=%d) in %v: %d EM iterations, converged=%v\n",
			tg.Result.Model.K(), time.Since(start).Round(time.Millisecond),
			tg.Result.Iters, tg.Result.Converged)
		return tg, nil
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, norm, err := gmm.Load(f)
	if err != nil {
		return nil, err
	}
	quant, qrep := gmm.Quantize(m)
	if qrep.Saturated > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d quantized model constants saturate Q16.16; fixed-point scores are unfaithful\n", qrep.Saturated)
	}
	tg := &core.TrainedGMM{
		Result:      &gmm.TrainResult{Model: m},
		Quantized:   quant,
		QuantReport: qrep,
		Norm:        norm,
		Transform:   cfg.Transform,
	}
	// Loaded models still need a threshold matched to this trace; run the
	// same empirical sweep Train performs.
	if _, err := core.CalibrateThreshold(tr, tg, cfg); err != nil {
		return nil, err
	}
	return tg, nil
}

func buildPolicy(name string, tr trace.Trace, tg *core.TrainedGMM, cfg core.Config) (cache.Policy, time.Duration, error) {
	return experiments.PolicyByName(name, tr, tg, cfg)
}

func report(r core.RunResult) {
	fmt.Printf("%-22s miss %6.2f%%  avg latency %-10v  (hits %d, misses %d, bypasses %d, writebacks %d)\n",
		r.Policy, r.MissRatePct(), r.AvgLatency,
		r.Cache.Hits, r.Cache.Misses, r.Cache.Bypasses, r.Cache.WriteBacks)
}
