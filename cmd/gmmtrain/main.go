// Command gmmtrain trains the ICGMM cache-policy GMM on a trace file and
// writes the model (with its input normalizer) as JSON.
//
// Usage:
//
//	gmmtrain -trace dlrm.trace -o dlrm.gmm
//	gmmtrain -trace parsec.csv -format csv -k 64 -iters 30 -o parsec.gmm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gmm"
	"repro/internal/trace"
)

func main() {
	var (
		inPath  = flag.String("trace", "", "input trace file")
		format  = flag.String("format", "binary", "trace format: binary|csv")
		out     = flag.String("o", "", "output model file (default stdout)")
		k       = flag.Int("k", 256, "number of Gaussian components")
		iters   = flag.Int("iters", 50, "maximum EM iterations")
		tol     = flag.Float64("tol", 1e-4, "convergence tolerance on mean log-likelihood")
		seed    = flag.Int64("seed", 1, "initialization seed")
		maxSamp = flag.Int("max-samples", 20000, "training subsample cap (0 = all)")
		window  = flag.Int("window", 32, "Algorithm 1 len_window")
		shot    = flag.Int("shot", 10000, "Algorithm 1 len_access_shot")
		diag    = flag.Bool("diag", false, "constrain covariances to be diagonal (cheaper hardware datapath)")
		chooseK = flag.Bool("choose-k", false, "select K from {16,32,64,128,256} by BIC instead of -k")
		workers = flag.Int("workers", 0, "E-step worker pool size (0 = one per core, 1 = sequential; results identical at any value)")
	)
	flag.Parse()

	if err := run(*inPath, *format, *out, *k, *iters, *tol, *seed, *maxSamp, *window, *shot, *diag, *chooseK, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "gmmtrain:", err)
		os.Exit(1)
	}
}

func run(inPath, format, out string, k, iters int, tol float64, seed int64, maxSamp, window, shot int, diag, chooseK bool, workers int) error {
	if inPath == "" {
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()

	var tr trace.Trace
	switch format {
	case "binary":
		tr, err = trace.ReadBinary(f)
	case "csv":
		tr, err = trace.ReadCSV(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}

	tcfg := trace.DefaultTransformConfig()
	tcfg.LenWindow = window
	tcfg.LenAccessShot = shot
	cfg := gmm.TrainConfig{
		K: k, MaxIters: iters, Tol: tol, Seed: seed, MaxSamples: maxSamp,
		DiagonalCov: diag, Workers: workers,
	}
	var res *gmm.TrainResult
	var norm trace.Normalizer
	if chooseK {
		samples := trace.Preprocess(tr, tcfg)
		norm = trace.FitNormalizer(samples)
		best, sweep, cerr := gmm.ChooseK(norm.ApplyAll(samples),
			[]int{16, 32, 64, 128, 256}, cfg, gmm.ByBIC)
		if cerr != nil {
			return cerr
		}
		for _, e := range sweep {
			fmt.Fprintf(os.Stderr, "K=%-4d BIC=%.1f\n", e.K, e.Score)
		}
		fmt.Fprintf(os.Stderr, "selected K=%d\n", best.K)
		res = best.Result
	} else {
		res, norm, err = gmm.FitTrace(tr, tcfg, cfg)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr,
		"trained K=%d on %d samples: %d iterations, converged=%v, mean log-likelihood %.4f\n",
		res.Model.K(), res.SamplesUsed, res.Iters, res.Converged, res.LogLikelihood)

	w := os.Stdout
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	return gmm.Save(w, res.Model, norm)
}
