// Command calibrate is a maintainer tool: it sweeps workload-generator
// parameters and reports LRU vs GMM miss rates so the benchmark mixes can
// be tuned to land near the paper's Fig. 6 bars. It is not part of the
// reproduction pipeline itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	var (
		n    = flag.Int("n", 300_000, "requests")
		seed = flag.Int64("seed", 1, "seed")
		k    = flag.Int("k", 128, "GMM components")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: *k, MaxIters: 40, Seed: 1, MaxSamples: 20000}

	for _, name := range flag.Args() {
		g, err := workload.ByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := g.Generate(*n, *seed)
		tg, err := core.Train(tr, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lru, err := core.Run(tr, policy.NewLRU(), 0, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ev, err := core.Run(tr, tg.Policy(policy.GMMEvictionOnly), cfg.GMMInference, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cb, err := core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bel, err := core.Run(tr, policy.NewBelady(tr, false), 0, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-9s LRU %6.2f  evict %6.2f (%+.2f)  comb %6.2f (%+.2f)  belady %6.2f  th=%.3g\n",
			name, lru.MissRatePct(),
			ev.MissRatePct(), ev.MissRatePct()-lru.MissRatePct(),
			cb.MissRatePct(), cb.MissRatePct()-lru.MissRatePct(),
			bel.MissRatePct(), tg.Threshold)
	}
}
