// Command icgmm-cluster runs spec-described serving sessions across a fleet
// of worker processes: a coordinator places each session on a worker,
// drives them in deterministic lockstep rounds, live-migrates sessions
// between workers, and survives worker death by replaying from the last
// periodic checkpoint — all while committing metric streams byte-identical
// to uninterrupted single-process runs of the same serve specs.
//
// Usage:
//
//	icgmm-cluster -spec cluster.json
//	icgmm-cluster -spec cluster.json -merged merged.jsonl -session-dir out/ -verify
//	icgmm-cluster worker
//
// The cluster spec is one JSON document (see cluster.Spec): worker count,
// checkpoint cadence, named sessions each embedding a full serve spec, and
// an optional deterministic fault schedule ({"kind": "migrate"|"kill",
// "after": N, ...}) for rehearsing the failure model.
//
// By default workers are spawned as child processes re-running this binary
// with the `worker` subcommand; -local runs them in-process instead. The
// merged stream (every committed record wrapped with its session name)
// goes to -merged (default stdout); -session-dir adds one raw per-session
// JSONL file per session. -verify re-runs every session in-process after
// the cluster run and byte-compares the streams — the determinism contract,
// checked end to end.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "worker" {
		if err := cluster.ServeWorker(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "icgmm-cluster worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := cliMain(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "icgmm-cluster:", err)
		os.Exit(1)
	}
}

// cliMain is the coordinator entry point; stdout is injected for tests.
func cliMain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("icgmm-cluster", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	specPath := fs.String("spec", "", "cluster run spec (JSON file, see cluster.Spec); required")
	mergedPath := fs.String("merged", "-", "merged-stream sink (JSONL file, or - for stdout)")
	sessionDir := fs.String("session-dir", "", "directory for per-session raw JSONL files (one per session)")
	local := fs.Bool("local", false, "run workers in-process instead of spawning worker processes")
	verify := fs.Bool("verify", false, "after the run, re-run each session in-process and byte-compare its stream")
	verbose := fs.Bool("v", false, "log placements, faults, deaths and replays to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fmt.Fprintln(os.Stderr, "usage: icgmm-cluster -spec cluster.json [-merged out.jsonl] [-session-dir dir] [-local] [-verify] [-v]")
			fmt.Fprintln(os.Stderr, "       icgmm-cluster worker")
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (did you mean the `worker` subcommand first?)", fs.Arg(0))
	}
	if *specPath == "" {
		return errors.New("-spec is required: icgmm-cluster -spec cluster.json")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return fmt.Errorf("reading -spec file: %w", err)
	}
	spec, err := cluster.ParseSpec(data)
	if err != nil {
		return err
	}

	merged := io.Writer(stdout)
	if *mergedPath != "" && *mergedPath != "-" {
		f, err := os.Create(*mergedPath)
		if err != nil {
			return err
		}
		defer f.Close()
		merged = f
	}

	// Per-session sinks: files under -session-dir, and an in-memory copy
	// when -verify needs to diff the streams afterwards.
	captures := map[string]*bytes.Buffer{}
	var sinkErr error
	sessionWriter := func(name string) io.Writer {
		var ws []io.Writer
		if *verify {
			buf := &bytes.Buffer{}
			captures[name] = buf
			ws = append(ws, buf)
		}
		if *sessionDir != "" {
			f, err := os.Create(filepath.Join(*sessionDir, name+".jsonl"))
			if err != nil {
				sinkErr = err
			} else {
				ws = append(ws, f) // closed on process exit; coordinator runs to completion first
			}
		}
		switch len(ws) {
		case 0:
			return io.Discard
		case 1:
			return ws[0]
		default:
			return io.MultiWriter(ws...)
		}
	}
	if *sessionDir != "" {
		if err := os.MkdirAll(*sessionDir, 0o755); err != nil {
			return err
		}
	}

	var launcher cluster.Launcher
	if *local {
		l := &cluster.LocalLauncher{}
		defer l.Close()
		launcher = l
	} else {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("resolving worker binary: %w", err)
		}
		launcher = &cluster.ProcLauncher{Argv: []string{self, "worker"}}
	}

	opts := cluster.Options{Merged: merged, SessionWriter: sessionWriter}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "icgmm-cluster: "+format+"\n", a...)
		}
	}

	// Telemetry (opt-in via the spec): the coordinator's cluster-wide live
	// view — per-worker step EWMAs, heartbeat staleness, placement, fault
	// counts — behind /metrics + /status + pprof, plus the cluster event
	// trace. Workers expose their own debug endpoints on their protocol
	// listeners regardless.
	if ts := spec.Telemetry; ts != nil {
		opts.Telemetry = telemetry.NewRegistry()
		if ts.Trace != "" {
			tw := io.Writer(os.Stderr)
			if ts.Trace != "-" {
				f, err := os.Create(ts.Trace)
				if err != nil {
					return fmt.Errorf("opening telemetry trace: %w", err)
				}
				defer f.Close()
				tw = f
			}
			opts.Trace = telemetry.NewTracer(tw)
		}
		if ts.Addr != "" {
			srv, err := telemetry.Serve(ts.Addr, opts.Telemetry)
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "telemetry: http://%s (/metrics /status /debug/pprof)\n", srv.Addr())
		}
	}

	start := time.Now()
	rep, err := cluster.Run(spec, launcher, opts)
	if err != nil {
		return err
	}
	if sinkErr != nil {
		return sinkErr
	}
	fmt.Fprintf(os.Stderr, "cluster: %d sessions on %d workers in %v (%d worker restarts)\n",
		len(rep.Sessions), spec.EffectiveWorkers(), time.Since(start).Round(time.Millisecond), rep.WorkerRestarts)
	for _, s := range rep.Sessions {
		fmt.Fprintf(os.Stderr, "  session %-12s %6d batches  worker %d  %d migrations  %d replays\n",
			s.Name, s.Batches, s.Worker, s.Migrations, s.Replays)
	}

	if *verify {
		if err := verifyStreams(spec, captures); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "verify: all %d session streams byte-identical to uninterrupted runs\n", len(spec.Sessions))
	}
	return nil
}

// verifyStreams re-runs every session's serve spec in one process and
// byte-compares the stream against what the cluster committed. Migration
// and crash replay must be invisible at the byte level; any divergence is
// a determinism bug, not a tolerance.
func verifyStreams(spec cluster.Spec, captures map[string]*bytes.Buffer) error {
	for _, ss := range spec.Sessions {
		sspec, err := serve.ParseSpec(ss.Spec)
		if err != nil {
			return err
		}
		var want bytes.Buffer
		sess, err := serve.Open(sspec, &want)
		if err != nil {
			return err
		}
		if _, err := sess.Run(); err != nil {
			return err
		}
		got := captures[ss.Name]
		if got == nil || !bytes.Equal(got.Bytes(), want.Bytes()) {
			gotLen := 0
			if got != nil {
				gotLen = got.Len()
			}
			return fmt.Errorf("verify: session %q stream diverges from uninterrupted run (%d vs %d bytes)",
				ss.Name, gotLen, want.Len())
		}
	}
	return nil
}
