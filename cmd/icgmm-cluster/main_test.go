package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIArgErrors: the coordinator refuses to run without a spec, with
// stray positionals, or with an unreadable document.
func TestCLIArgErrors(t *testing.T) {
	var out bytes.Buffer
	if err := cliMain(nil, &out); err == nil || !strings.Contains(err.Error(), "-spec is required") {
		t.Errorf("empty invocation: %v", err)
	}
	if err := cliMain([]string{"-spec", "c.json", "stray"}, &out); err == nil || !strings.Contains(err.Error(), "worker") {
		t.Errorf("stray positional not pointed at the worker subcommand: %v", err)
	}
	if err := cliMain([]string{"-spec", "/nonexistent/c.json"}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
	if err := cliMain([]string{"-h"}, &out); err != nil {
		t.Errorf("-h returned %v", err)
	}
}

// TestCLIRejectsBadSpec: strict decoding and validation surface through the
// command with their field paths intact.
func TestCLIRejectsBadSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	if err := os.WriteFile(path, []byte(`{"version": 1, "workrs": 2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := cliMain([]string{"-spec", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "cluster.workrs") {
		t.Errorf("unknown field not named by path: %v", err)
	}
}

// TestCLISampleRunsAndVerifies drives the committed sample spec — forced
// migration and forced kill included — through the full command with
// in-process workers, and lets -verify assert the byte-identity contract.
// The spawned-process path is covered by the Makefile's test-cluster smoke
// (it needs the built binary on disk).
func TestCLISampleRunsAndVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("full cluster run")
	}
	dir := t.TempDir()
	mergedPath := filepath.Join(dir, "merged.jsonl")
	sessionDir := filepath.Join(dir, "sessions")
	var out bytes.Buffer
	err := cliMain([]string{
		"-spec", "testdata/cluster-sample.json",
		"-merged", mergedPath,
		"-session-dir", sessionDir,
		"-local", "-verify",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Error("merged stream empty")
	}
	for _, name := range []string{"tenants", "stream"} {
		data, err := os.ReadFile(filepath.Join(sessionDir, name+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Errorf("per-session stream %q empty", name)
		}
	}
}
