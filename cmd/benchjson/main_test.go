package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/serve
cpu: AMD EPYC 7B13
BenchmarkServeShards1-1   	       4	286338434 ns/op	    457752 wall-ops/sec	    1024 B/op	       3 allocs/op
BenchmarkServeShards2-1   	       4	290000000 ns/op
PASS
ok  	repro/internal/serve	2.541s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkServeShards1-1" || r.Iterations != 4 {
		t.Errorf("first result = %+v", r)
	}
	if r.Pkg != "repro/internal/serve" || r.Goos != "linux" || r.Goarch != "amd64" || r.CPU != "AMD EPYC 7B13" {
		t.Errorf("environment not attached: %+v", r)
	}
	want := map[string]float64{
		"ns/op": 286338434, "wall-ops/sec": 457752, "B/op": 1024, "allocs/op": 3,
	}
	for unit, v := range want {
		if r.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, r.Metrics[unit], v)
		}
	}
	if len(results[1].Metrics) != 1 {
		t.Errorf("second result metrics = %v", results[1].Metrics)
	}
}

func TestParseSkipsNoise(t *testing.T) {
	in := `some preamble
BenchmarkNotANumber badline here
--- BENCH: BenchmarkFoo
PASS
`
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("noise parsed as %d results", len(results))
	}
}

func TestParseRejectsBadMetric(t *testing.T) {
	in := "BenchmarkX-4 10 abc ns/op\n"
	if _, err := parse(strings.NewReader(in)); err == nil {
		t.Fatal("malformed metric value accepted")
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d entries", len(decoded))
	}
	if err := run(strings.NewReader("PASS\n"), &out); err == nil {
		t.Fatal("empty benchmark stream accepted")
	}
}
