// Command benchjson converts `go test -bench` text output into JSON, so
// benchmark runs can be committed as machine-readable trajectory points
// (BENCH_<date>.json) next to the raw text benchstat consumes. It reads the
// benchmark stream on stdin and writes one JSON document on stdout:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson > BENCH_20260807.json
//
// Every metric go test emits is kept as a name -> value pair ("ns/op",
// "allocs/op", custom b.ReportMetric units like "wall-ops/sec"), so new
// metrics never require a schema change here.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line.
type result struct {
	// Pkg and the environment lines active when the benchmark ran.
	Pkg    string `json:"pkg,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Name is the full benchmark name including the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line.
	Metrics map[string]float64 `json:"metrics"`
}

// parse consumes a `go test -bench` text stream. Non-benchmark lines (PASS,
// ok, coverage, test logs) are skipped; goos/goarch/pkg/cpu header lines set
// the environment attached to subsequent results.
func parse(r io.Reader) ([]result, error) {
	var (
		out                      []result
		goos, goarch, pkg, cpuID string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			cpuID = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that happens to start with "Benchmark"
		}
		res := result{
			Pkg: pkg, Goos: goos, Goarch: goarch, CPU: cpuID,
			Name: fields[0], Iterations: iters,
			Metrics: make(map[string]float64),
		}
		// The remainder alternates value, unit.
		vals := fields[2:]
		for i := 0; i+1 < len(vals); i += 2 {
			v, err := strconv.ParseFloat(vals[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad metric value %q", fields[0], vals[i])
			}
			res.Metrics[vals[i+1]] = v
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func run(r io.Reader, w io.Writer) error {
	results, err := parse(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
