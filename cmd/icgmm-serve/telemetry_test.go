package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestCLITelemetryLiveScrape runs the committed telemetry spec — the elastic
// scenario with the debug server and stderr trace enabled — through the real
// CLI entry point, scrapes /metrics and /status over HTTP while the run is
// serving, and then checks the two halves of the observability contract:
// the endpoints answer with live well-formed data mid-flight, and the metric
// JSONL written is still byte-identical to the telemetry-free golden.
func TestCLITelemetryLiveScrape(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "metrics.jsonl")

	// The CLI reports the bound telemetry address (the spec asks for port 0)
	// and streams the trace on stderr; capture both through a pipe.
	origStderr := os.Stderr
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	defer func() { os.Stderr = origStderr }()
	lines := make(chan string, 8192)
	go func() {
		sc := bufio.NewScanner(pr)
		sc.Buffer(nil, 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	done := make(chan error, 1)
	go func() {
		done <- cliMain([]string{"-spec", "testdata/spec-telemetry.json", "-out", outPath, "-shards", "4"})
	}()

	// Wait for the telemetry banner, then scrape while the run serves.
	var addr string
	var early []string
	timeout := time.After(2 * time.Minute)
	for addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stderr closed before the telemetry banner; saw:\n%s", strings.Join(early, "\n"))
			}
			early = append(early, line)
			if rest, found := strings.CutPrefix(line, "telemetry: http://"); found {
				addr, _, _ = strings.Cut(rest, " ")
			}
		case err := <-done:
			t.Fatalf("run finished before the telemetry banner (err=%v); saw:\n%s", err, strings.Join(early, "\n"))
		case <-timeout:
			t.Fatal("no telemetry banner within 2m")
		}
	}

	metricsBody := httpGet(t, "http://"+addr+"/metrics")
	for _, want := range []string{"icgmm_uptime_seconds", `icgmm_session_ops_total{session="serve"}`} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("live /metrics missing %s:\n%s", want, metricsBody)
		}
	}
	var st telemetry.Status
	if err := json.Unmarshal([]byte(httpGet(t, "http://"+addr+"/status")), &st); err != nil {
		t.Fatalf("live /status not JSON: %v", err)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Name != "serve" || st.Sessions[0].Snapshot == nil {
		t.Errorf("live /status = %+v", st.Sessions)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	pw.Close()
	os.Stderr = origStderr

	// Drain the rest of stderr: the trace rode it as JSONL ("trace": "-").
	kinds := map[string]int{}
	for line := range lines {
		if !strings.HasPrefix(line, "{") {
			continue
		}
		var ev telemetry.TraceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if ev.TimeUnixNs == 0 || ev.Session != "serve" {
			t.Fatalf("malformed trace event %+v", ev)
		}
		kinds[ev.Kind]++
	}
	for _, want := range []string{"drift", "refresh", "share"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}

	// Telemetry on, scraped mid-flight: the metric stream is still the
	// committed telemetry-off golden, byte for byte.
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "tenant_golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("telemetry-on run diverges from the golden JSONL (%d vs %d bytes)", len(got), len(want))
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
