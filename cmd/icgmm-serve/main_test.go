package main

import (
	"strings"
	"testing"
	"time"
)

// baseConfig returns flag defaults scaled down for tests. The warmup/shot
// pairs under test must fail fast — before any GMM training — so these runs
// complete in milliseconds.
func baseConfig() config {
	return config{
		shards: 1, partitions: 8, ops: 1024, duration: time.Duration(0),
		bench: "dlrm", seed: 1, rate: 1e6,
		refresh: "off", warmup: 200_000, cacheMB: 16, ways: 8,
		k: 8, window: 32, shot: 2000, batch: 1024, report: 16,
		out: "/dev/null", controlEvery: 16, controlStep: 1.25,
	}
}

// TestRunRejectsShortWarmup is the regression test for the warm-up
// validation: a warm-up whose trimmed length cannot cover one access shot
// must be an error (the old CLI only printed a warning, and only for the
// default single-workload path).
func TestRunRejectsShortWarmup(t *testing.T) {
	c := baseConfig()
	c.warmup = 40_000 // trimmed 28k < 32*2000 = 64k
	err := run(c)
	if err == nil {
		t.Fatal("short warm-up accepted")
	}
	if !strings.Contains(err.Error(), "access shot") {
		t.Errorf("error does not explain the access-shot constraint: %v", err)
	}
}

// TestRunRejectsStarvedTenantWarmup: the per-tenant validation must error,
// naming the tenant whose rate share leaves unseen timestamp stripes, even
// when the global warm-up is long enough.
func TestRunRejectsStarvedTenantWarmup(t *testing.T) {
	c := baseConfig()
	c.shot = 500 // global span 16k fits the 140k trimmed warm-up
	c.tenants = `[
	 {"name":"whale","workload":"dlrm","seed":1,"rate":990000,"share":0.5},
	 {"name":"starved","workload":"memtier","seed":2,"rate":10000,"share":0.5}
	]`
	err := run(c)
	if err == nil {
		t.Fatal("starved tenant accepted")
	}
	if !strings.Contains(err.Error(), `"starved"`) {
		t.Errorf("error does not name the starved tenant: %v", err)
	}
}

// TestRunRejectsBadTenantSpec: malformed -tenants JSON is an error, not a
// silent fallback to the single-workload path.
func TestRunRejectsBadTenantSpec(t *testing.T) {
	c := baseConfig()
	c.tenants = `[{"name":"a","workload":"dlrm","rate":1e6,"share":0.5,"typo_field":1}]`
	if err := run(c); err == nil {
		t.Fatal("malformed tenant spec accepted")
	}
}

// TestLoadTenantSpecsInline: the -tenants argument doubles as inline JSON
// when it starts with '['.
func TestLoadTenantSpecsInline(t *testing.T) {
	specs, err := loadTenantSpecs(` [{"name":"a","workload":"dlrm","rate":1e6,"share":0.5}]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "a" {
		t.Fatalf("specs = %+v", specs)
	}
	if _, err := loadTenantSpecs("/nonexistent/tenants.json"); err == nil {
		t.Fatal("missing spec file accepted")
	}
}
