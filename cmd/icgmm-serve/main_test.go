package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// writeSpec drops a spec document into a temp dir and returns its path.
func writeSpec(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCLIRequiresSpec: with the legacy flags gone, -spec is the interface;
// an empty invocation must say so and point at the migration note.
func TestCLIRequiresSpec(t *testing.T) {
	err := cliMain(nil)
	if err == nil {
		t.Fatal("empty invocation accepted")
	}
	if !strings.Contains(err.Error(), "-spec is required") {
		t.Errorf("error does not require -spec: %v", err)
	}
	if !strings.Contains(err.Error(), "removed in PR 6") {
		t.Errorf("error does not mention the flag removal: %v", err)
	}
}

// TestCLIRejectsRemovedFlags: every retired flag must fail with a message
// naming the spec field that replaced it — in all the spellings the old
// interface accepted (-flag value, -flag=value, --flag), and regardless of
// where it sits in the argument list.
func TestCLIRejectsRemovedFlags(t *testing.T) {
	cases := []struct {
		args  []string
		field string
	}{
		{[]string{"-workload", "parsec"}, `"workload.name"`},
		{[]string{"--workload=parsec"}, `"workload.name"`},
		{[]string{"-spec", "run.json", "-ops", "1024"}, `"ops"`},
		{[]string{"-cache-mb=16"}, `"cache.size_mb"`},
		{[]string{"-k", "8"}, `"train.k"`},
		{[]string{"-shot", "500"}, `"train.shot"`},
		{[]string{"-refresh", "sync"}, `"refresh.mode"`},
		{[]string{"-drift"}, `"workload.drift"`},
		{[]string{"-drift-sustain", "8"}, `"refresh.drift_sustain"`},
		{[]string{"-tenants", "t.json"}, `"tenants"`},
		{[]string{"-share-adapt"}, `"control.share_adapt"`},
		{[]string{"-control-max-mult", "16"}, `"control.max_mult"`},
	}
	for _, tc := range cases {
		err := cliMain(tc.args)
		if err == nil {
			t.Errorf("%v: accepted", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), "removed in PR 6") {
			t.Errorf("%v: error is not the migration message: %v", tc.args, err)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%v: error does not name spec field %s: %v", tc.args, tc.field, err)
		}
	}
}

// TestCLIRejectsUnknownFlagAndArgs: a flag that never existed still gets the
// stock parse error, and stray positional arguments are refused.
func TestCLIRejectsUnknownFlagAndArgs(t *testing.T) {
	if err := cliMain([]string{"-frobnicate"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := cliMain([]string{"-spec", "run.json", "extra"}); err == nil || !strings.Contains(err.Error(), `"extra"`) {
		t.Errorf("positional argument not refused: %v", err)
	}
}

// TestCLIHelp: -h prints usage and exits cleanly rather than erroring.
func TestCLIHelp(t *testing.T) {
	if err := cliMain([]string{"-h"}); err != nil {
		t.Errorf("-h returned %v", err)
	}
}

// TestCLIMissingAndMalformedSpec: unreadable files and documents that fail
// validation surface as errors, not silent defaults.
func TestCLIMissingAndMalformedSpec(t *testing.T) {
	if err := cliMain([]string{"-spec", "/nonexistent/run.json"}); err == nil {
		t.Error("missing spec file accepted")
	}
	// Unknown field: the strict decoder names the path.
	err := cliMain([]string{"-spec", writeSpec(t, `{"version": 1, "sahre": 2}`)})
	if err == nil || !strings.Contains(err.Error(), "sahre") {
		t.Errorf("unknown spec field not named: %v", err)
	}
	// Valid JSON, invalid run: warm-up too short for one access shot.
	err = cliMain([]string{"-spec", writeSpec(t, `{
	 "version": 1, "ops": 1024, "warmup": 40000, "output": "/dev/null",
	 "train": {"k": 8, "shot": 2000}
	}`)})
	if err == nil {
		t.Fatal("short warm-up accepted")
	}
	if !strings.Contains(err.Error(), "access shot") {
		t.Errorf("error does not explain the access-shot constraint: %v", err)
	}
}

// TestCLIRejectsStarvedTenantWarmup: the per-tenant warm-up validation must
// error through the spec path, naming the tenant whose rate share leaves
// unseen timestamp stripes.
func TestCLIRejectsStarvedTenantWarmup(t *testing.T) {
	err := cliMain([]string{"-spec", writeSpec(t, `{
	 "version": 1, "ops": 1024, "warmup": 200000, "output": "/dev/null",
	 "train": {"k": 8, "shot": 500},
	 "tenants": [
	  {"name": "whale", "workload": "dlrm", "seed": 1, "rate": 990000, "share": 0.5},
	  {"name": "starved", "workload": "memtier", "seed": 2, "rate": 10000, "share": 0.5}
	 ]
	}`)})
	if err == nil {
		t.Fatal("starved tenant accepted")
	}
	if !strings.Contains(err.Error(), `"starved"`) {
		t.Errorf("error does not name the starved tenant: %v", err)
	}
}

// TestCLIOverrides: -out and -shards are the only overrides left, and they
// apply only when set — a bare -spec run keeps the document's values. Probed
// via the removed-output path: overriding -out to an unwritable directory
// must fail at sink creation, proving the override took.
func TestCLIOverrides(t *testing.T) {
	doc := writeSpec(t, `{"version": 1, "ops": 1024, "warmup": 40000, "output": "/dev/null",
	 "train": {"k": 8, "shot": 2000}}`)
	// Short warm-up fails validation before the sink opens, with or without
	// overrides; a bogus -shards must not change the error.
	err1 := cliMain([]string{"-spec", doc})
	err2 := cliMain([]string{"-spec", doc, "-shards", "3", "-out", "/nonexistent/dir/out.jsonl"})
	if err1 == nil || err2 == nil {
		t.Fatal("short warm-up accepted")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("meta overrides changed the validation error: %v vs %v", err1, err2)
	}
}

// TestSpecReproducesGoldenRun is the CLI-level acceptance check: running the
// committed spec-elastic.json through the real entry point must reproduce
// the PR-4 golden JSONL byte for byte — and a -shards override must not
// change a byte of it.
func TestSpecReproducesGoldenRun(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "metrics.jsonl")
	if err := cliMain([]string{"-spec", "testdata/spec-elastic.json", "-out", outPath, "-shards", "4"}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "tenant_golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-spec run diverges from the golden JSONL (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCommittedSpecsParse: the testdata specs the Makefile smokes run must
// stay loadable and valid.
func TestCommittedSpecsParse(t *testing.T) {
	for _, path := range []string{
		"testdata/spec-smoke.json",
		"testdata/spec-tenants.json",
		"testdata/spec-elastic.json",
		"testdata/spec-telemetry.json",
		"testdata/spec-q16.json",
		"testdata/spec-scenario.json",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := serve.ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}
