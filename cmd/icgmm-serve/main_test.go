package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// baseConfig returns flag defaults scaled down for tests. The warmup/shot
// pairs under test must fail fast — before any GMM training — so these runs
// complete in milliseconds.
func baseConfig() config {
	return config{
		shards: 1, partitions: 8, ops: 1024, duration: time.Duration(0),
		bench: "dlrm", seed: 1, rate: 1e6,
		refresh: "off", warmup: 200_000, cacheMB: 16, ways: 8,
		k: 8, window: 32, shot: 2000, batch: 1024, report: 16,
		out: "/dev/null", controlEvery: 16, controlStep: 1.25,
	}
}

// TestRunRejectsShortWarmup is the regression test for the warm-up
// validation: a warm-up whose trimmed length cannot cover one access shot
// must be an error (the old CLI only printed a warning, and only for the
// default single-workload path).
func TestRunRejectsShortWarmup(t *testing.T) {
	c := baseConfig()
	c.warmup = 40_000 // trimmed 28k < 32*2000 = 64k
	err := run(c)
	if err == nil {
		t.Fatal("short warm-up accepted")
	}
	if !strings.Contains(err.Error(), "access shot") {
		t.Errorf("error does not explain the access-shot constraint: %v", err)
	}
}

// TestRunRejectsStarvedTenantWarmup: the per-tenant validation must error,
// naming the tenant whose rate share leaves unseen timestamp stripes, even
// when the global warm-up is long enough.
func TestRunRejectsStarvedTenantWarmup(t *testing.T) {
	c := baseConfig()
	c.shot = 500 // global span 16k fits the 140k trimmed warm-up
	c.tenants = `[
	 {"name":"whale","workload":"dlrm","seed":1,"rate":990000,"share":0.5},
	 {"name":"starved","workload":"memtier","seed":2,"rate":10000,"share":0.5}
	]`
	err := run(c)
	if err == nil {
		t.Fatal("starved tenant accepted")
	}
	if !strings.Contains(err.Error(), `"starved"`) {
		t.Errorf("error does not name the starved tenant: %v", err)
	}
}

// TestRunRejectsBadTenantSpec: malformed -tenants JSON is an error, not a
// silent fallback to the single-workload path.
func TestRunRejectsBadTenantSpec(t *testing.T) {
	c := baseConfig()
	c.tenants = `[{"name":"a","workload":"dlrm","rate":1e6,"share":0.5,"typo_field":1}]`
	if err := run(c); err == nil {
		t.Fatal("malformed tenant spec accepted")
	}
}

// TestLoadTenantSpecsInline: the -tenants argument doubles as inline JSON
// when it starts with '['.
func TestLoadTenantSpecsInline(t *testing.T) {
	specs, err := loadTenantSpecs(` [{"name":"a","workload":"dlrm","rate":1e6,"share":0.5}]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Name != "a" {
		t.Fatalf("specs = %+v", specs)
	}
	if _, err := loadTenantSpecs("/nonexistent/tenants.json"); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

// TestSpecFlagOverrides: with -spec, only explicitly-set legacy flags
// override the document — unset flags leave the spec's values alone.
func TestSpecFlagOverrides(t *testing.T) {
	c := baseConfig()
	c.spec = "testdata/spec-elastic.json"
	c.set = map[string]bool{"shards": true, "out": true, "control-step": true}
	c.shards = 8
	c.out = "override.jsonl"
	c.controlStep = 2.5
	spec, err := c.buildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Shards != 8 || spec.Output != "override.jsonl" || spec.Control.Step != 2.5 {
		t.Errorf("overrides not applied: shards=%d output=%q step=%v", spec.Shards, spec.Output, spec.Control.Step)
	}
	// Everything the flags did not touch keeps the document's values.
	if spec.Ops != 163840 || spec.Partitions != 8 || spec.Train.K != 8 || len(spec.Tenants) != 3 {
		t.Errorf("spec fields lost: %+v", spec)
	}
	if spec.Control.ShareQuantum != 8 || !spec.Control.ShareAdapt {
		t.Errorf("control section lost: %+v", spec.Control)
	}
}

// TestSpecFlagOverrideTenants: -tenants on top of -spec replaces the tenant
// population (and clears any single-stream workload).
func TestSpecFlagOverrideTenants(t *testing.T) {
	c := baseConfig()
	c.spec = "testdata/spec-elastic.json"
	c.set = map[string]bool{"tenants": true}
	c.tenants = `[{"name":"solo","workload":"dlrm","seed":1,"rate":1e6,"share":0.5}]`
	spec, err := c.buildSpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tenants) != 1 || spec.Tenants[0].Name != "solo" {
		t.Fatalf("tenants not overridden: %+v", spec.Tenants)
	}
}

// TestSpecReproducesGoldenRun is the CLI-level acceptance check: running the
// committed spec-elastic.json through the real run path must reproduce the
// PR-4 golden JSONL byte for byte.
func TestSpecReproducesGoldenRun(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "metrics.jsonl")
	c := config{spec: "testdata/spec-elastic.json", set: map[string]bool{"out": true}, out: outPath}
	if err := run(c); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "serve", "testdata", "tenant_golden.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("-spec run diverges from the golden JSONL (%d vs %d bytes)", len(got), len(want))
	}
}
