// Command icgmm-serve runs the online serving subsystem: a sharded cache
// service that models the ICGMM device under live open-loop traffic, with
// batched GMM admission, per-partition cxl/hbm/ssd latency accounting, and
// optional online model refresh when the hit ratio drifts.
//
// Usage:
//
//	icgmm-serve -workload dlrm -ops 2000000 -shards 8 -out metrics.jsonl
//	icgmm-serve -workload memtier -duration 10s -refresh async
//	icgmm-serve -workload dlrm -ops 1000000 -drift -refresh sync
//	icgmm-serve -tenants tenants.json -ops 1000000 -shards 8
//
// The service first trains an initial GMM on a warm-up trace from the same
// generator, then serves -ops requests (or ingests until -duration of wall
// time passes). Metrics stream as JSONL to -out (default stdout): "interval"
// records while serving, then "partition" and "summary" records. For a fixed
// seed and -refresh off|sync, every metric is bit-identical at any -shards
// value; a closing "wall" line on stderr reports (non-deterministic)
// wall-clock throughput.
//
// -tenants switches to multi-tenant serving: the argument is a JSON array of
// tenant specs (inline if it starts with '[', otherwise a file path), each
// naming a workload stream with its own seed, rate, HBM capacity share and
// optional QoS target for the adaptive threshold controller. The stream
// gains "tenant-interval", "control" and final "tenant" records, and a
// per-tenant table prints to stderr. -workload/-rate/-burst/-drift describe
// the single anonymous stream and are ignored under -tenants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		shards        = flag.Int("shards", 0, "shard worker pool size (0 = one per core, 1 = sequential; results identical at any value)")
		partitions    = flag.Int("partitions", 16, "fixed address partitions (part of the simulated configuration)")
		ops           = flag.Uint64("ops", 2_000_000, "requests to serve")
		duration      = flag.Duration("duration", 0, "wall-clock ingest bound; stops early even if -ops remain")
		bench         = flag.String("workload", "dlrm", "workload generator (see cmd/tracegen for names)")
		seed          = flag.Int64("seed", 1, "workload and training seed")
		rate          = flag.Float64("rate", 1e6, "open-loop arrival rate in req/s (0 = saturating)")
		burst         = flag.Float64("burst", 0, "sinusoidal rate modulation amplitude [0,1)")
		drift         = flag.Bool("drift", false, "shift the working set halfway through -ops (exercises refresh)")
		refresh       = flag.String("refresh", "off", "online model refresh: off|sync|async (sync keeps determinism, async never blocks serving)")
		refreshWindow = flag.Int("refresh-window", 1<<16, "sample window a refit trains on (smaller = faster adaptation to a shifted working set)")
		refreshMin    = flag.Int("refresh-min", 4096, "minimum window fill before a refit runs")
		driftDelta    = flag.Float64("drift-delta", 0.10, "absolute hit-ratio drop below baseline that counts as drifting")
		driftSustain  = flag.Int("drift-sustain", 3, "consecutive drifting batches before a refit fires")
		driftWarmup   = flag.Int("drift-warmup", 8, "batches used to seed the drift baseline")
		driftAlpha    = flag.Float64("drift-alpha", 0.05, "EWMA coefficient of the drift baseline tracker")
		warmup        = flag.Int("warmup", 200_000, "warm-up trace length for initial training")
		cacheMB       = flag.Int("cache-mb", 64, "total device cache size in MiB")
		ways          = flag.Int("ways", 8, "cache associativity")
		k             = flag.Int("k", 64, "GMM components")
		window        = flag.Int("window", 32, "Algorithm 1 len_window")
		shot          = flag.Int("shot", 2000, "Algorithm 1 len_access_shot (window*shot must fit in the trimmed warm-up)")
		batch         = flag.Int("batch", 8192, "ingest batch size (batched GMM admission unit)")
		report        = flag.Int("report", 16, "batches per interval metrics record")
		out           = flag.String("out", "", "JSONL metrics file (default stdout)")
		tenants       = flag.String("tenants", "", "multi-tenant spec: JSON array of tenants (inline if it starts with '[', else a file path); overrides -workload/-rate/-burst/-drift")
		controlEvery  = flag.Int("control-every", 16, "batches per adaptive-controller step (tenants with QoS targets)")
		controlStep   = flag.Float64("control-step", 1.25, "multiplicative threshold step of the adaptive controller (> 1)")
		controlMin    = flag.Float64("control-min-mult", 1.0/1024, "lower clamp on the controller's threshold multiplier")
		controlMax    = flag.Float64("control-max-mult", 1024, "upper clamp on the threshold multiplier (tight clamps keep comfortable tenants identifiable as share donors)")
		shareAdapt    = flag.Bool("share-adapt", false, "let the controller reallocate HBM capacity shares between QoS tenants (elastic shares)")
		shareQuantum  = flag.Int("share-quantum", 8, "blocks per partition moved by one share transfer")
		shareHold     = flag.Int("share-hold", 2, "violated intervals with a saturated threshold lever before a tenant bids for capacity")
		shareCooldown = flag.Int("share-cooldown", 4, "control intervals the share lever pauses after a transfer (hysteresis)")
	)
	flag.Parse()

	if err := run(config{
		shards: *shards, partitions: *partitions, ops: *ops, duration: *duration,
		bench: *bench, seed: *seed, rate: *rate, burst: *burst, drift: *drift,
		refresh: *refresh, refreshWindow: *refreshWindow, refreshMin: *refreshMin,
		driftDelta: *driftDelta, driftSustain: *driftSustain,
		driftWarmup: *driftWarmup, driftAlpha: *driftAlpha,
		warmup: *warmup, cacheMB: *cacheMB, ways: *ways,
		k: *k, window: *window, shot: *shot, batch: *batch, report: *report, out: *out,
		tenants: *tenants, controlEvery: *controlEvery, controlStep: *controlStep,
		controlMin: *controlMin, controlMax: *controlMax,
		shareAdapt: *shareAdapt, shareQuantum: *shareQuantum,
		shareHold: *shareHold, shareCooldown: *shareCooldown,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "icgmm-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	shards, partitions     int
	ops                    uint64
	duration               time.Duration
	bench                  string
	seed                   int64
	rate, burst            float64
	drift                  bool
	refresh                string
	refreshWindow          int
	refreshMin             int
	driftDelta, driftAlpha float64
	driftSustain           int
	driftWarmup            int
	warmup, cacheMB, ways  int
	k, window, shot, batch int
	report                 int
	out                    string
	tenants                string
	controlEvery           int
	controlStep            float64
	controlMin, controlMax float64
	shareAdapt             bool
	shareQuantum           int
	shareHold              int
	shareCooldown          int
}

// loadTenantSpecs resolves the -tenants argument: inline JSON when it starts
// with '[', otherwise a file path.
func loadTenantSpecs(arg string) ([]serve.TenantSpec, error) {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "[") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("reading -tenants file: %w", err)
		}
		data = b
	}
	return serve.ParseTenantSpecs(data)
}

func run(c config) error {
	mode, err := serve.ParseRefreshMode(c.refresh)
	if err != nil {
		return err
	}
	var specs []serve.TenantSpec
	if c.tenants != "" {
		if specs, err = loadTenantSpecs(c.tenants); err != nil {
			return err
		}
	}

	cfg := serve.DefaultConfig()
	cfg.Shards = c.shards
	cfg.Partitions = c.partitions
	cfg.Cache = cache.Config{SizeBytes: uint64(c.cacheMB) << 20, BlockBytes: trace.PageSize, Ways: c.ways}
	cfg.Train.K = c.k
	cfg.Train.Seed = c.seed
	cfg.Transform.LenWindow = c.window
	cfg.Transform.LenAccessShot = c.shot
	cfg.BatchSize = c.batch
	cfg.ReportEvery = c.report
	cfg.Refresh.Mode = mode
	cfg.Refresh.WindowSamples = c.refreshWindow
	cfg.Refresh.MinSamples = c.refreshMin
	cfg.Refresh.Drift = serve.DriftConfig{
		Delta: c.driftDelta, Sustain: c.driftSustain,
		Warmup: c.driftWarmup, Alpha: c.driftAlpha,
	}
	cfg.Tenants = specs
	cfg.Control.Every = c.controlEvery
	cfg.Control.Step = c.controlStep
	cfg.Control.MinMult = c.controlMin
	cfg.Control.MaxMult = c.controlMax
	cfg.Control.ShareAdapt = c.shareAdapt
	cfg.Control.ShareQuantum = c.shareQuantum
	cfg.Control.ShareHold = c.shareHold
	cfg.Control.ShareCooldown = c.shareCooldown
	// Every tenant (or the single anonymous stream) must see the full
	// Algorithm 1 timestamp range during warm-up; anything less trains a
	// model that scores live traffic out-of-distribution.
	if err := serve.ValidateWarmup(c.warmup, cfg.Transform, specs); err != nil {
		return err
	}

	w := os.Stdout
	if c.out != "" {
		f, err := os.Create(c.out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cfg.Metrics = w

	var warm trace.Trace
	var src serve.Source
	var label string
	if len(specs) > 0 {
		label = fmt.Sprintf("%d tenants", len(specs))
		warmMux, err := serve.NewTenantMux(specs)
		if err != nil {
			return err
		}
		warm = warmMux.Trace(c.warmup)
		srvMux, err := serve.NewTenantMux(specs)
		if err != nil {
			return err
		}
		src = serve.NewMuxSource(srvMux, c.ops)
	} else {
		gen, err := workload.ByName(c.bench)
		if err != nil {
			return err
		}
		label = gen.Name()
		warm = gen.Generate(c.warmup, c.seed)
		olCfg := workload.OpenLoopConfig{
			RatePerSec: c.rate,
			BurstAmp:   c.burst,
			Seed:       c.seed,
		}
		if c.drift {
			olCfg.ShiftAfter = c.ops / 2
			olCfg.ShiftOffsetPages = 1 << 30
		}
		ol, err := workload.NewOpenLoop(gen, olCfg)
		if err != nil {
			return err
		}
		src = serve.NewOpenLoopSource(ol, c.ops)
	}

	fmt.Fprintf(os.Stderr, "training initial GMM (K=%d) on %d warm-up requests of %s...\n", c.k, c.warmup, label)
	bundle, err := serve.TrainBundle(warm, cfg)
	if err != nil {
		return err
	}
	svc, err := serve.New(cfg, bundle)
	if err != nil {
		return err
	}
	if c.duration > 0 {
		src = &deadlineSource{inner: src, deadline: time.Now().Add(c.duration)}
	}

	fmt.Fprintf(os.Stderr, "serving %s: shards=%d partitions=%d batch=%d refresh=%s\n",
		label, c.shards, c.partitions, c.batch, mode)
	start := time.Now()
	snap, err := svc.Run(src)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr,
		"wall: served %d ops in %v (%.0f ops/s wall, %.0f ops/s virtual), hit ratio %.4f, refreshes %d\n",
		snap.Ops, wall.Round(time.Millisecond), float64(snap.Ops)/wall.Seconds(),
		snap.Throughput, snap.HitRatio(), snap.Refreshes)
	if len(specs) > 0 {
		fmt.Fprint(os.Stderr, tenantTable(snap))
	}
	return nil
}

// tenantTable renders the final per-tenant accounting as an aligned table.
func tenantTable(snap *serve.Snapshot) string {
	tbl := stats.NewTable("per-tenant summary",
		"tenant", "ops", "hit%", "mb_admitted", "p99_us", "hbm_p99_us", "ssd_p99_us", "blocks", "threshold", "qos", "in_band")
	for i := range snap.Tenants {
		ts := &snap.Tenants[i]
		qos, inBand := "-", "-"
		if ts.QoS != nil {
			qos = fmt.Sprintf("%s<=%.3g", ts.QoS.Metric, ts.QoS.Target)
			if ts.QoS.Metric == serve.QoSHitRatio {
				qos = fmt.Sprintf("%s>=%.3g", ts.QoS.Metric, ts.QoS.Target)
			}
			if ts.QoSValid {
				inBand = fmt.Sprintf("%v", ts.WithinQoS)
			}
		}
		tbl.AddRow(ts.Tenant, ts.Ops, 100*ts.HitRatio(),
			float64(ts.BytesAdmitted)/(1<<20),
			float64(ts.Latency.P99.Nanoseconds())/1e3,
			float64(ts.HBM.P99.Nanoseconds())/1e3,
			float64(ts.SSD.P99.Nanoseconds())/1e3,
			fmt.Sprintf("%d/%d", ts.ResidentBlocks, ts.BudgetBlocks),
			ts.Threshold, qos, inBand)
	}
	return tbl.String()
}

// deadlineSource stops the stream once a wall-clock deadline passes — the
// -duration bound. Wall time makes runs non-reproducible by construction, so
// it wraps the deterministic source rather than living inside the service.
type deadlineSource struct {
	inner    serve.Source
	deadline time.Time
}

func (d *deadlineSource) Next(dst []serve.Request) int {
	if !time.Now().Before(d.deadline) {
		return 0
	}
	return d.inner.Next(dst)
}
