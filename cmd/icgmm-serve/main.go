// Command icgmm-serve runs the online serving subsystem: a sharded cache
// service that models the ICGMM device under live open-loop traffic, with
// batched GMM admission, per-partition cxl/hbm/ssd latency accounting, and
// optional online model refresh when the hit ratio drifts.
//
// Usage:
//
//	icgmm-serve -spec run.json
//	icgmm-serve -spec run.json -shards 8 -out metrics.jsonl
//	icgmm-serve -workload dlrm -ops 2000000 -shards 8 -out metrics.jsonl
//	icgmm-serve -workload memtier -duration 10s -refresh async
//	icgmm-serve -tenants tenants.json -ops 1000000 -shards 8
//
// The preferred interface is -spec: one versioned JSON document (see
// serve.Spec) that fully describes the run — training, partitions, tenants,
// controller, refresh, workloads and the metrics sink — and doubles as the
// wire format for shipping runs between machines. Every legacy flag maps to
// a spec field (the README carries the full migration table) and remains
// usable as an override on top of -spec for one release: flags given
// explicitly on the command line replace the corresponding spec fields.
//
// The service first trains an initial GMM on a warm-up trace from the same
// generator, then serves the configured requests (or ingests until -duration
// of wall time passes). Metrics stream as JSONL to -out (default stdout):
// "interval" records while serving, then "partition" and "summary" records.
// For a fixed seed and -refresh off|sync, every metric is bit-identical at
// any -shards value; a closing "wall" line on stderr reports
// (non-deterministic) wall-clock throughput.
//
// -tenants switches to multi-tenant serving: the argument is a JSON array of
// tenant specs (inline if it starts with '[', otherwise a file path), each
// naming a workload stream with its own seed, rate, HBM capacity share and
// optional QoS target for the adaptive threshold controller. The stream
// gains "tenant-interval", "control" and final "tenant" records, and a
// per-tenant table prints to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	var (
		spec          = flag.String("spec", "", "declarative run spec (JSON file, see serve.Spec); explicitly-set legacy flags override its fields")
		shards        = flag.Int("shards", 0, "shard worker pool size (0 = one per core, 1 = sequential; results identical at any value)")
		partitions    = flag.Int("partitions", 16, "fixed address partitions (part of the simulated configuration)")
		ops           = flag.Uint64("ops", 2_000_000, "requests to serve")
		duration      = flag.Duration("duration", 0, "wall-clock ingest bound; stops early even if -ops remain")
		bench         = flag.String("workload", "dlrm", "workload generator (see cmd/tracegen for names)")
		seed          = flag.Int64("seed", 1, "workload and training seed")
		rate          = flag.Float64("rate", 1e6, "open-loop arrival rate in req/s (0 = saturating)")
		burst         = flag.Float64("burst", 0, "sinusoidal rate modulation amplitude [0,1)")
		drift         = flag.Bool("drift", false, "shift the working set halfway through -ops (exercises refresh)")
		refresh       = flag.String("refresh", "off", "online model refresh: off|sync|async (sync keeps determinism, async never blocks serving)")
		refreshWindow = flag.Int("refresh-window", 1<<16, "sample window a refit trains on (smaller = faster adaptation to a shifted working set)")
		refreshMin    = flag.Int("refresh-min", 4096, "minimum window fill before a refit runs")
		driftDelta    = flag.Float64("drift-delta", 0.10, "absolute hit-ratio drop below baseline that counts as drifting")
		driftSustain  = flag.Int("drift-sustain", 3, "consecutive drifting batches before a refit fires")
		driftWarmup   = flag.Int("drift-warmup", 8, "batches used to seed the drift baseline")
		driftAlpha    = flag.Float64("drift-alpha", 0.05, "EWMA coefficient of the drift baseline tracker")
		warmup        = flag.Int("warmup", 200_000, "warm-up trace length for initial training")
		cacheMB       = flag.Int("cache-mb", 64, "total device cache size in MiB")
		ways          = flag.Int("ways", 8, "cache associativity")
		k             = flag.Int("k", 64, "GMM components")
		window        = flag.Int("window", 32, "Algorithm 1 len_window")
		shot          = flag.Int("shot", 2000, "Algorithm 1 len_access_shot (window*shot must fit in the trimmed warm-up)")
		batch         = flag.Int("batch", 8192, "ingest batch size (batched GMM admission unit)")
		report        = flag.Int("report", 16, "batches per interval metrics record")
		out           = flag.String("out", "", "JSONL metrics file (default stdout)")
		tenants       = flag.String("tenants", "", "multi-tenant spec: JSON array of tenants (inline if it starts with '[', else a file path); overrides -workload/-rate/-burst/-drift")
		controlEvery  = flag.Int("control-every", 16, "batches per adaptive-controller step (tenants with QoS targets)")
		controlStep   = flag.Float64("control-step", 1.25, "multiplicative threshold step of the adaptive controller (> 1)")
		controlMin    = flag.Float64("control-min-mult", 1.0/1024, "lower clamp on the controller's threshold multiplier")
		controlMax    = flag.Float64("control-max-mult", 1024, "upper clamp on the threshold multiplier (tight clamps keep comfortable tenants identifiable as share donors)")
		shareAdapt    = flag.Bool("share-adapt", false, "let the controller reallocate HBM capacity shares between QoS tenants (elastic shares)")
		shareQuantum  = flag.Int("share-quantum", 8, "blocks per partition moved by one share transfer")
		shareHold     = flag.Int("share-hold", 2, "violated intervals with a saturated threshold lever before a tenant bids for capacity")
		shareCooldown = flag.Int("share-cooldown", 4, "control intervals the share lever pauses after a transfer (hysteresis)")
	)
	flag.Parse()
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if err := run(config{
		spec: *spec, set: set,
		shards: *shards, partitions: *partitions, ops: *ops, duration: *duration,
		bench: *bench, seed: *seed, rate: *rate, burst: *burst, drift: *drift,
		refresh: *refresh, refreshWindow: *refreshWindow, refreshMin: *refreshMin,
		driftDelta: *driftDelta, driftSustain: *driftSustain,
		driftWarmup: *driftWarmup, driftAlpha: *driftAlpha,
		warmup: *warmup, cacheMB: *cacheMB, ways: *ways,
		k: *k, window: *window, shot: *shot, batch: *batch, report: *report, out: *out,
		tenants: *tenants, controlEvery: *controlEvery, controlStep: *controlStep,
		controlMin: *controlMin, controlMax: *controlMax,
		shareAdapt: *shareAdapt, shareQuantum: *shareQuantum,
		shareHold: *shareHold, shareCooldown: *shareCooldown,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "icgmm-serve:", err)
		os.Exit(1)
	}
}

type config struct {
	// spec is the -spec file path; set records which flags were given
	// explicitly (nil means "treat every flag as explicit", the pure-flag
	// legacy path).
	spec string
	set  map[string]bool

	shards, partitions     int
	ops                    uint64
	duration               time.Duration
	bench                  string
	seed                   int64
	rate, burst            float64
	drift                  bool
	refresh                string
	refreshWindow          int
	refreshMin             int
	driftDelta, driftAlpha float64
	driftSustain           int
	driftWarmup            int
	warmup, cacheMB, ways  int
	k, window, shot, batch int
	report                 int
	out                    string
	tenants                string
	controlEvery           int
	controlStep            float64
	controlMin, controlMax float64
	shareAdapt             bool
	shareQuantum           int
	shareHold              int
	shareCooldown          int
}

// isSet reports whether a flag was given explicitly. Without a set map
// (tests building config directly, or the no-spec path) every flag counts.
func (c config) isSet(name string) bool {
	if c.set == nil {
		return true
	}
	return c.set[name]
}

// loadTenantSpecs resolves the -tenants argument: inline JSON when it starts
// with '[', otherwise a file path.
func loadTenantSpecs(arg string) ([]serve.TenantSpec, error) {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "[") {
		b, err := os.ReadFile(arg)
		if err != nil {
			return nil, fmt.Errorf("reading -tenants file: %w", err)
		}
		data = b
	}
	return serve.ParseTenantSpecs(data)
}

// buildSpec resolves the run's declarative spec: the -spec document when
// given, with every explicitly-set legacy flag applied on top as an
// override; or a spec synthesized from the flags alone (the legacy path,
// where every flag applies).
func (c config) buildSpec() (serve.Spec, error) {
	spec := serve.Spec{Version: serve.SpecVersion}
	if c.spec != "" {
		data, err := os.ReadFile(c.spec)
		if err != nil {
			return serve.Spec{}, fmt.Errorf("reading -spec file: %w", err)
		}
		if spec, err = serve.ParseSpec(data); err != nil {
			return serve.Spec{}, err
		}
	}
	if err := c.applyFlags(&spec); err != nil {
		return serve.Spec{}, err
	}
	if err := spec.Validate(); err != nil {
		return serve.Spec{}, err
	}
	return spec, nil
}

// applyFlags folds the explicitly-set legacy flags into the spec — the
// documented flag→field migration mapping, applied in one place.
func (c config) applyFlags(s *serve.Spec) error {
	ensureCache := func() *serve.CacheSpec {
		if s.Cache == nil {
			s.Cache = &serve.CacheSpec{}
		}
		return s.Cache
	}
	ensureTrain := func() *serve.TrainSpec {
		if s.Train == nil {
			s.Train = &serve.TrainSpec{}
		}
		return s.Train
	}
	ensureWorkload := func() *serve.WorkloadSpec {
		if s.Workload == nil {
			s.Workload = &serve.WorkloadSpec{}
		}
		return s.Workload
	}
	ensureRefresh := func() *serve.RefreshSpec {
		if s.Refresh == nil {
			s.Refresh = &serve.RefreshSpec{}
		}
		return s.Refresh
	}
	ensureControl := func() *serve.ControlSpec {
		if s.Control == nil {
			s.Control = &serve.ControlSpec{}
		}
		return s.Control
	}
	if c.isSet("shards") {
		s.Shards = c.shards
	}
	if c.isSet("partitions") {
		s.Partitions = c.partitions
	}
	if c.isSet("ops") {
		s.Ops = c.ops
	}
	if c.isSet("duration") && c.duration > 0 {
		s.Duration = c.duration.String()
	}
	if c.isSet("warmup") {
		s.Warmup = c.warmup
	}
	if c.isSet("batch") {
		s.Batch = c.batch
	}
	if c.isSet("report") {
		s.Report = c.report
		if c.report <= 0 {
			s.Report = -1 // legacy: 0 disabled interval records
		}
	}
	if c.isSet("out") {
		s.Output = c.out
	}
	if c.isSet("cache-mb") {
		ensureCache().SizeMB = c.cacheMB
	}
	if c.isSet("ways") {
		ensureCache().Ways = c.ways
	}
	if c.isSet("k") {
		ensureTrain().K = c.k
	}
	if c.isSet("seed") {
		ensureTrain().Seed = c.seed
	}
	if c.isSet("window") {
		ensureTrain().Window = c.window
	}
	if c.isSet("shot") {
		ensureTrain().Shot = c.shot
	}
	if c.isSet("refresh") {
		ensureRefresh().Mode = c.refresh
	}
	if c.isSet("refresh-window") {
		ensureRefresh().Window = c.refreshWindow
	}
	if c.isSet("refresh-min") {
		ensureRefresh().Min = c.refreshMin
	}
	if c.isSet("drift-delta") {
		ensureRefresh().DriftDelta = c.driftDelta
	}
	if c.isSet("drift-sustain") {
		ensureRefresh().DriftSustain = c.driftSustain
	}
	if c.isSet("drift-warmup") {
		ensureRefresh().DriftWarmup = c.driftWarmup
	}
	if c.isSet("drift-alpha") {
		ensureRefresh().DriftAlpha = c.driftAlpha
	}
	if c.isSet("control-every") {
		ensureControl().Every = c.controlEvery
	}
	if c.isSet("control-step") {
		ensureControl().Step = c.controlStep
	}
	if c.isSet("control-min-mult") {
		ensureControl().MinMult = c.controlMin
	}
	if c.isSet("control-max-mult") {
		ensureControl().MaxMult = c.controlMax
	}
	if c.isSet("share-adapt") {
		ensureControl().ShareAdapt = c.shareAdapt
	}
	if c.isSet("share-quantum") {
		ensureControl().ShareQuantum = c.shareQuantum
	}
	if c.isSet("share-hold") {
		ensureControl().ShareHold = c.shareHold
	}
	if c.isSet("share-cooldown") {
		cd := c.shareCooldown
		ensureControl().ShareCooldown = &cd
	}
	if c.tenants != "" && c.isSet("tenants") {
		specs, err := loadTenantSpecs(c.tenants)
		if err != nil {
			return err
		}
		s.Tenants = specs
		s.Workload = nil
	}
	// Workload flags describe the single anonymous stream; under a tenant
	// population they are ignored, exactly as before.
	if len(s.Tenants) == 0 {
		if c.isSet("workload") {
			ensureWorkload().Name = c.bench
		}
		if c.isSet("seed") {
			ensureWorkload().Seed = c.seed
		}
		if c.isSet("rate") {
			r := c.rate
			if r <= 0 {
				r = -1 // legacy: -rate 0 meant a saturating source
			}
			ensureWorkload().Rate = r
		}
		if c.isSet("burst") {
			ensureWorkload().Burst = c.burst
		}
		if c.isSet("drift") {
			ensureWorkload().Drift = c.drift
		}
	}
	return nil
}

func run(c config) error {
	spec, err := c.buildSpec()
	if err != nil {
		return err
	}
	return runSpec(spec)
}

// runSpec drives one serving run through the Session lifecycle: resolve the
// sink, train, step batches (honouring the wall-clock bound), close, report.
func runSpec(spec serve.Spec) error {
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	w := os.Stdout
	if spec.Output != "" && spec.Output != "-" {
		f, err := os.Create(spec.Output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	label := fmt.Sprintf("%d tenants", len(spec.Tenants))
	if len(spec.Tenants) == 0 {
		label = "dlrm"
		switch {
		case spec.Workload != nil && spec.Workload.Custom != nil:
			label = spec.Workload.Custom.Name
		case spec.Workload != nil && spec.Workload.Name != "":
			label = spec.Workload.Name
		}
	}
	fmt.Fprintf(os.Stderr, "training initial GMM (K=%d) on %d warm-up requests of %s...\n",
		cfg.Train.K, spec.EffectiveWarmup(), label)
	sess, err := serve.Open(spec, w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s: shards=%d partitions=%d batch=%d refresh=%s\n",
		label, cfg.Shards, cfg.Partitions, cfg.BatchSize, cfg.Refresh.Mode)

	start := time.Now()
	var deadline time.Time
	if spec.Duration != "" {
		d, err := time.ParseDuration(spec.Duration)
		if err != nil {
			return err
		}
		deadline = start.Add(d)
	}
	for !sess.Done() {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if _, err := sess.Step(1); err != nil {
			return err
		}
	}
	if err := sess.Close(); err != nil {
		return err
	}
	snap := sess.Metrics()
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr,
		"wall: served %d ops in %v (%.0f ops/s wall, %.0f ops/s virtual), hit ratio %.4f, refreshes %d\n",
		snap.Ops, wall.Round(time.Millisecond), float64(snap.Ops)/wall.Seconds(),
		snap.Throughput, snap.HitRatio(), snap.Refreshes)
	if len(spec.Tenants) > 0 {
		fmt.Fprint(os.Stderr, tenantTable(snap))
	}
	return nil
}

// tenantTable renders the final per-tenant accounting as an aligned table.
func tenantTable(snap *serve.Snapshot) string {
	tbl := stats.NewTable("per-tenant summary",
		"tenant", "ops", "hit%", "mb_admitted", "p99_us", "hbm_p99_us", "ssd_p99_us", "blocks", "threshold", "qos", "in_band")
	for i := range snap.Tenants {
		ts := &snap.Tenants[i]
		qos, inBand := "-", "-"
		if ts.QoS != nil {
			qos = fmt.Sprintf("%s<=%.3g", ts.QoS.Metric, ts.QoS.Target)
			if ts.QoS.Metric == serve.QoSHitRatio {
				qos = fmt.Sprintf("%s>=%.3g", ts.QoS.Metric, ts.QoS.Target)
			}
			if ts.QoSValid {
				inBand = fmt.Sprintf("%v", ts.WithinQoS)
			}
		}
		tbl.AddRow(ts.Tenant, ts.Ops, 100*ts.HitRatio(),
			float64(ts.BytesAdmitted)/(1<<20),
			float64(ts.Latency.P99.Nanoseconds())/1e3,
			float64(ts.HBM.P99.Nanoseconds())/1e3,
			float64(ts.SSD.P99.Nanoseconds())/1e3,
			fmt.Sprintf("%d/%d", ts.ResidentBlocks, ts.BudgetBlocks),
			ts.Threshold, qos, inBand)
	}
	return tbl.String()
}
