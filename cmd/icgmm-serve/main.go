// Command icgmm-serve runs the online serving subsystem: a sharded cache
// service that models the ICGMM device under live open-loop traffic, with
// batched GMM admission, per-partition cxl/hbm/ssd latency accounting, and
// optional online model refresh when the hit ratio drifts.
//
// Usage:
//
//	icgmm-serve -spec run.json
//	icgmm-serve -spec run.json -shards 8 -out metrics.jsonl
//
// The spec is one versioned JSON document (see serve.Spec) that fully
// describes the run — training, partitions, tenants, controller, refresh,
// workloads and the metrics sink — and doubles as the wire format for
// shipping runs between machines. -out and -shards are the only meta
// overrides: where the metrics go and how wide the (result-invariant)
// worker pool is.
//
// The legacy per-parameter flag interface was removed in PR 6 after a
// release of -spec soak time; invoking a removed flag names the spec field
// that replaced it. The README's "Migrating from flags to -spec" note has
// the history.
//
// The service first trains an initial GMM on a warm-up trace from the same
// generator, then serves the configured requests (or ingests until the
// spec's duration of wall time passes). Metrics stream as JSONL to -out
// (default the spec's output field, default stdout): "interval" records
// while serving, then "partition" and "summary" records. For a fixed seed
// and refresh off|sync, every metric is bit-identical at any shard count; a
// closing "wall" line on stderr reports (non-deterministic) wall-clock
// throughput. A spec with tenants gains "tenant-interval", "control" and
// final "tenant" records, and a per-tenant table prints to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

func main() {
	if err := cliMain(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icgmm-serve:", err)
		os.Exit(1)
	}
}

// removedFlags maps every legacy flag retired in PR 6 to the spec field
// that replaced it, so an old invocation fails with a pointer at its exact
// migration instead of a generic parse error.
var removedFlags = map[string]string{
	"partitions":       "partitions",
	"ops":              "ops",
	"duration":         "duration",
	"workload":         "workload.name",
	"seed":             "train.seed (and workload.seed / tenants[i].seed)",
	"rate":             "workload.rate",
	"burst":            "workload.burst",
	"drift":            "workload.drift",
	"refresh":          "refresh.mode",
	"refresh-window":   "refresh.window",
	"refresh-min":      "refresh.min",
	"drift-delta":      "refresh.drift_delta",
	"drift-sustain":    "refresh.drift_sustain",
	"drift-warmup":     "refresh.drift_warmup",
	"drift-alpha":      "refresh.drift_alpha",
	"warmup":           "warmup",
	"cache-mb":         "cache.size_mb",
	"ways":             "cache.ways",
	"k":                "train.k",
	"window":           "train.window",
	"shot":             "train.shot",
	"batch":            "batch",
	"report":           "report",
	"tenants":          "tenants",
	"control-every":    "control.every",
	"control-step":     "control.step",
	"control-min-mult": "control.min_mult",
	"control-max-mult": "control.max_mult",
	"share-adapt":      "control.share_adapt",
	"share-quantum":    "control.share_quantum",
	"share-hold":       "control.share_hold",
	"share-cooldown":   "control.share_cooldown",
}

// cliMain is the testable entry point: parse the three surviving flags,
// load and validate the spec, apply the meta overrides, run.
func cliMain(args []string) error {
	if legacy := findRemovedFlag(args); legacy != "" {
		return fmt.Errorf("-%s was removed in PR 6: set the spec field %q and rerun with -spec run.json (see the README's \"Migrating from flags to -spec\" note)",
			legacy, removedFlags[legacy])
	}
	fs := flag.NewFlagSet("icgmm-serve", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	specPath := fs.String("spec", "", "declarative run spec (JSON file, see serve.Spec); required")
	out := fs.String("out", "", "JSONL metrics sink (file path, or - for stdout); overrides the spec's output field")
	shards := fs.Int("shards", 0, "override the spec's shard worker pool size (0 = one per core; results identical at any value)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(os.Stderr)
			fmt.Fprintln(os.Stderr, "usage: icgmm-serve -spec run.json [-out metrics.jsonl] [-shards N]")
			fs.PrintDefaults()
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (the run is described by -spec)", fs.Arg(0))
	}
	if *specPath == "" {
		return errors.New("-spec is required: icgmm-serve -spec run.json (the legacy flag interface was removed in PR 6; see the README migration note)")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return fmt.Errorf("reading -spec file: %w", err)
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["out"] {
		spec.Output = *out
	}
	if set["shards"] {
		spec.Shards = *shards
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	return runSpec(spec)
}

// findRemovedFlag scans raw arguments for a flag retired in PR 6, before
// flag parsing turns it into a generic "flag provided but not defined".
func findRemovedFlag(args []string) string {
	for _, a := range args {
		if len(a) < 2 || a[0] != '-' {
			continue
		}
		name := a[1:]
		if name[0] == '-' {
			name = name[1:]
		}
		for i := 0; i < len(name); i++ {
			if name[i] == '=' {
				name = name[:i]
				break
			}
		}
		if _, ok := removedFlags[name]; ok {
			return name
		}
	}
	return ""
}

// runSpec drives one serving run through the Session lifecycle: resolve the
// sink, train, step batches (honouring the wall-clock bound), close, report.
func runSpec(spec serve.Spec) error {
	cfg, err := spec.Config()
	if err != nil {
		return err
	}
	w := os.Stdout
	if spec.Output != "" && spec.Output != "-" {
		f, err := os.Create(spec.Output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	label := fmt.Sprintf("%d tenants", len(spec.Tenants))
	if len(spec.Tenants) == 0 {
		label = "dlrm"
		switch {
		case spec.Workload != nil && spec.Workload.Custom != nil:
			label = spec.Workload.Custom.Name
		case spec.Workload != nil && spec.Workload.Name != "":
			label = spec.Workload.Name
		}
	}
	fmt.Fprintf(os.Stderr, "training initial GMM (K=%d) on %d warm-up requests of %s...\n",
		cfg.Train.K, spec.EffectiveWarmup(), label)
	sess, err := serve.Open(spec, w)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving %s: shards=%d partitions=%d batch=%d refresh=%s\n",
		label, cfg.Shards, cfg.Partitions, cfg.BatchSize, cfg.Refresh.Mode)

	tel, err := startTelemetry(spec, sess)
	if err != nil {
		return err
	}
	defer tel.close()

	start := time.Now()
	var deadline time.Time
	if spec.Duration != "" {
		d, err := time.ParseDuration(spec.Duration)
		if err != nil {
			return err
		}
		deadline = start.Add(d)
	}
	for !sess.Done() {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		if _, err := sess.Step(1); err != nil {
			return err
		}
		tel.afterStep(sess)
	}
	if err := sess.Close(); err != nil {
		return err
	}
	snap := sess.Metrics()
	tel.final(snap)
	wall := time.Since(start)
	fmt.Fprintf(os.Stderr,
		"wall: served %d ops in %v (%.0f ops/s wall, %.0f ops/s virtual), hit ratio %.4f, refreshes %d\n",
		snap.Ops, wall.Round(time.Millisecond), float64(snap.Ops)/wall.Seconds(),
		snap.Throughput, snap.HitRatio(), snap.Refreshes)
	if len(spec.Tenants) > 0 {
		fmt.Fprint(os.Stderr, tenantTable(snap))
	}
	return nil
}

// sessionName labels the CLI's single session in telemetry output.
const sessionName = "serve"

// cliTelemetry is the run's optional telemetry hookup: the registry behind
// the debug server, the server itself, the trace sink, and the snapshot
// cadence. The zero value (telemetry off) makes every method a no-op, so
// the serving loop calls them unconditionally.
type cliTelemetry struct {
	reg       *telemetry.Registry
	srv       *telemetry.Server
	traceFile *os.File
	every     uint64
}

// startTelemetry resolves the spec's telemetry block: build the registry,
// open the trace sink, start the debug server (reporting the bound address
// on stderr — the spec may ask for port 0), and wire the session's event
// observer. Everything it sets up is read-side: the JSONL metric stream is
// byte-identical with or without it.
func startTelemetry(spec serve.Spec, sess *serve.Session) (*cliTelemetry, error) {
	tel := &cliTelemetry{}
	ts := spec.Telemetry
	if ts == nil {
		return tel, nil
	}
	tel.reg = telemetry.NewRegistry()
	tel.every = ts.EffectiveSnapshotEvery()
	var tracer *telemetry.Tracer
	switch ts.Trace {
	case "":
	case "-":
		tracer = telemetry.NewTracer(os.Stderr)
	default:
		f, err := os.Create(ts.Trace)
		if err != nil {
			return nil, fmt.Errorf("opening telemetry trace: %w", err)
		}
		tel.traceFile = f
		tracer = telemetry.NewTracer(f)
	}
	sess.Observe(telemetry.SessionObserver(tel.reg, tracer, sessionName))
	tel.reg.PublishSnapshot(sessionName, sess.Metrics())
	if ts.Addr != "" {
		srv, err := telemetry.Serve(ts.Addr, tel.reg)
		if err != nil {
			return nil, err
		}
		tel.srv = srv
		fmt.Fprintf(os.Stderr, "telemetry: http://%s (/metrics /status /debug/pprof)\n", srv.Addr())
	}
	return tel, nil
}

// afterStep publishes the session's progress after each batch, and a full
// snapshot (which sorts retained histogram samples) every `every` batches.
func (t *cliTelemetry) afterStep(sess *serve.Session) {
	if t.reg == nil {
		return
	}
	t.reg.PublishProgress(sessionName, sess.Batches(), sess.Done())
	if sess.Batches()%t.every == 0 {
		t.reg.PublishSnapshot(sessionName, sess.Metrics())
	}
}

// final publishes the closing snapshot so a last scrape sees the full run.
func (t *cliTelemetry) final(snap *serve.Snapshot) {
	if t.reg == nil {
		return
	}
	t.reg.PublishProgress(sessionName, snap.Batches, true)
	t.reg.PublishSnapshot(sessionName, snap)
}

// close tears the debug server and trace sink down.
func (t *cliTelemetry) close() {
	if t.srv != nil {
		t.srv.Close() //nolint:errcheck // teardown
	}
	if t.traceFile != nil {
		t.traceFile.Close() //nolint:errcheck // teardown
	}
}

// tenantTable renders the final per-tenant accounting as an aligned table.
func tenantTable(snap *serve.Snapshot) string {
	tbl := stats.NewTable("per-tenant summary",
		"tenant", "ops", "hit%", "mb_admitted", "p99_us", "hbm_p99_us", "ssd_p99_us", "blocks", "threshold", "qos", "in_band")
	for i := range snap.Tenants {
		ts := &snap.Tenants[i]
		qos, inBand := "-", "-"
		if ts.QoS != nil {
			qos = fmt.Sprintf("%s<=%.3g", ts.QoS.Metric, ts.QoS.Target)
			if ts.QoS.Metric == serve.QoSHitRatio {
				qos = fmt.Sprintf("%s>=%.3g", ts.QoS.Metric, ts.QoS.Target)
			}
			if ts.QoSValid {
				inBand = fmt.Sprintf("%v", ts.WithinQoS)
			}
		}
		tbl.AddRow(ts.Tenant, ts.Ops, 100*ts.HitRatio(),
			float64(ts.BytesAdmitted)/(1<<20),
			float64(ts.Latency.P99.Nanoseconds())/1e3,
			float64(ts.HBM.P99.Nanoseconds())/1e3,
			float64(ts.SSD.P99.Nanoseconds())/1e3,
			fmt.Sprintf("%d/%d", ts.ResidentBlocks, ts.BudgetBlocks),
			ts.Threshold, qos, inBand)
	}
	return tbl.String()
}
