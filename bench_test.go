// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results):
//
//	BenchmarkFig2*     — access-distribution data behind Fig. 2
//	BenchmarkFig6*     — the miss-rate comparison of Fig. 6
//	BenchmarkTable1*   — the average SSD access time of Table 1
//	BenchmarkTable2*   — the policy-engine latency/resource contrast of Table 2
//	BenchmarkAblation* — the design-choice ablations DESIGN.md calls out
//	BenchmarkOverlap   — the Sec. 4.3 dataflow-overlap effect
//
// Benchmarks report the paper-relevant quantities as custom metrics
// (miss percentage, average latency, reduction percentage) alongside the
// usual ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// The full-resolution numbers in EXPERIMENTS.md come from
// cmd/experiments, which runs the same code at larger trace lengths.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fpga"
	"repro/internal/gmm"
	"repro/internal/linalg"
	"repro/internal/lstm"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchRequests keeps bench iterations affordable; cmd/experiments runs the
// same pipelines at 1M+ requests for the recorded numbers.
const benchRequests = 120_000

// benchConfig is the paper configuration with a reduced K so a full
// train+simulate cycle fits in a benchmark iteration.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Train = gmm.TrainConfig{K: 64, MaxIters: 25, Seed: 1, MaxSamples: 12000}
	// A short candidate ladder keeps the auto-threshold sweep (part of
	// Train) affordable inside a benchmark iteration.
	cfg.ThresholdCandidates = []float64{0, 0.05, 0.2}
	return cfg
}

// --- Fig. 2: memory access spatial and temporal distributions ---

func benchmarkFig2(b *testing.B, name string) {
	for i := 0; i < b.N; i++ {
		spatial, temporal, err := experiments.Fig2Series(name, benchRequests, 1, 64, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if spatial.Len() == 0 || temporal.Len() == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFig2DLRM(b *testing.B)     { benchmarkFig2(b, "dlrm") }
func BenchmarkFig2Parsec(b *testing.B)   { benchmarkFig2(b, "parsec") }
func BenchmarkFig2Sysbench(b *testing.B) { benchmarkFig2(b, "sysbench") }

// --- Fig. 6: cache miss rate, LRU vs the three GMM strategies ---

func benchmarkFig6(b *testing.B, name string) {
	g, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr := g.Generate(benchRequests, 1)
	cfg := benchConfig()
	var last *core.Comparison
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp, err := core.Compare(name, tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = cmp
	}
	b.StopTimer()
	best := last.BestGMM()
	b.ReportMetric(last.LRU.MissRatePct(), "lru-miss-%")
	b.ReportMetric(best.MissRatePct(), "gmm-miss-%")
	b.ReportMetric(last.LRU.MissRatePct()-best.MissRatePct(), "decrease-pp")
	if best.Cache.MissRate() > last.LRU.Cache.MissRate() {
		b.Errorf("%s: best GMM miss %.2f%% worse than LRU %.2f%%",
			name, best.MissRatePct(), last.LRU.MissRatePct())
	}
}

func BenchmarkFig6Parsec(b *testing.B)   { benchmarkFig6(b, "parsec") }
func BenchmarkFig6Memtier(b *testing.B)  { benchmarkFig6(b, "memtier") }
func BenchmarkFig6Hashmap(b *testing.B)  { benchmarkFig6(b, "hashmap") }
func BenchmarkFig6Heap(b *testing.B)     { benchmarkFig6(b, "heap") }
func BenchmarkFig6Sysbench(b *testing.B) { benchmarkFig6(b, "sysbench") }
func BenchmarkFig6Stream(b *testing.B)   { benchmarkFig6(b, "stream") }
func BenchmarkFig6DLRM(b *testing.B)     { benchmarkFig6(b, "dlrm") }

// --- Table 1: average SSD access time, LRU vs GMM ---

func benchmarkTable1(b *testing.B, name string) {
	g, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	tr := g.Generate(benchRequests, 1)
	cfg := benchConfig()
	tg, err := core.Train(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var lru, gmmRes core.RunResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lru, err = core.Run(tr, policy.NewLRU(), 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		gmmRes, err = core.Run(tr, tg.Policy(policy.GMMCachingEviction), cfg.GMMInference, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lru.AvgLatency.Nanoseconds())/1000, "lru-us")
	b.ReportMetric(float64(gmmRes.AvgLatency.Nanoseconds())/1000, "gmm-us")
	red := 100 * (float64(lru.AvgLatency) - float64(gmmRes.AvgLatency)) / float64(lru.AvgLatency)
	b.ReportMetric(red, "reduction-%")
}

func BenchmarkTable1Parsec(b *testing.B)   { benchmarkTable1(b, "parsec") }
func BenchmarkTable1Memtier(b *testing.B)  { benchmarkTable1(b, "memtier") }
func BenchmarkTable1Hashmap(b *testing.B)  { benchmarkTable1(b, "hashmap") }
func BenchmarkTable1Heap(b *testing.B)     { benchmarkTable1(b, "heap") }
func BenchmarkTable1Sysbench(b *testing.B) { benchmarkTable1(b, "sysbench") }
func BenchmarkTable1Stream(b *testing.B)   { benchmarkTable1(b, "stream") }
func BenchmarkTable1DLRM(b *testing.B)     { benchmarkTable1(b, "dlrm") }

// --- Table 2: policy engine latency and resources, GMM vs LSTM ---

// BenchmarkTable2GMMInference measures one float-precision GMM inference at
// the paper's K = 256 — the software counterpart of the 3 us hardware
// number.
func BenchmarkTable2GMMInference(b *testing.B) {
	comps := make([]gmm.Component, 256)
	for i := range comps {
		comps[i] = gmm.Component{
			Weight: 1.0 / 256,
			Mean:   linalg.V2(float64(i)/256, float64(i%16)/16),
			Cov:    linalg.SymDiag(0.01, 0.01),
		}
	}
	m, err := gmm.New(comps)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScorePageTime(0.5, 0.5)
	}
}

// BenchmarkTable2GMMQuantized measures the fixed-point weight-buffer path.
func BenchmarkTable2GMMQuantized(b *testing.B) {
	comps := make([]gmm.Component, 256)
	for i := range comps {
		comps[i] = gmm.Component{
			Weight: 1.0 / 256,
			Mean:   linalg.V2(float64(i)/256, float64(i%16)/16),
			Cov:    linalg.SymDiag(0.01, 0.01),
		}
	}
	m, err := gmm.New(comps)
	if err != nil {
		b.Fatal(err)
	}
	q, _ := gmm.Quantize(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.ScorePageTime(0.5, 0.5)
	}
}

// BenchmarkTable2LSTMInference measures one inference of the paper's LSTM
// baseline (3 layers, hidden 128, sequence 32). The ns/op ratio against
// BenchmarkTable2GMMInference reproduces the Table 2 contrast in software.
func BenchmarkTable2LSTMInference(b *testing.B) {
	n, err := lstm.New(lstm.PaperBaseline(), 1)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([][]float64, 32)
	for i := range seq {
		seq[i] = []float64{float64(i) / 32, 0.5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Forward(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2HardwareModel evaluates the calibrated FPGA cost models
// and reports the Table 2 ratios as metrics.
func BenchmarkTable2HardwareModel(b *testing.B) {
	var cmp fpga.EngineComparison
	for i := 0; i < b.N; i++ {
		cmp = fpga.CompareEngines()
	}
	b.ReportMetric(cmp.Speedup, "speedup-x")
	b.ReportMetric(cmp.BRAMRatio, "bram-ratio-x")
}

// --- Sec. 5.3: dataflow overlap of GMM inference with SSD access ---

func BenchmarkOverlap(b *testing.B) {
	events := make([]fpga.AccessEvent, 20000)
	for i := range events {
		events[i] = fpga.AccessEvent{Hit: i%5 != 0} // 20% misses
	}
	on := fpga.DefaultDataflowConfig()
	off := fpga.DefaultDataflowConfig()
	off.Overlap = false
	var tOn, tOff int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlOn, err := fpga.SimulateDataflow(events, on)
		if err != nil {
			b.Fatal(err)
		}
		tlOff, err := fpga.SimulateDataflow(events, off)
		if err != nil {
			b.Fatal(err)
		}
		tOn, tOff = tlOn.TotalCycles, tlOff.TotalCycles
	}
	b.StopTimer()
	b.ReportMetric(float64(tOff-tOn)/float64(tOff)*100, "overlap-saving-%")
	if tOn >= tOff {
		b.Error("overlap did not reduce total cycles")
	}
}

// --- Ablations (DESIGN.md Sec. 5) ---

// BenchmarkAblationK sweeps the mixture size on one benchmark.
func BenchmarkAblationK(b *testing.B) {
	tr := workload.NewHashmap().Generate(benchRequests, 1)
	for _, k := range []int{16, 64, 256} {
		b.Run(map[int]string{16: "K16", 64: "K64", 256: "K256"}[k], func(b *testing.B) {
			cfg := benchConfig()
			cfg.Train.K = k
			var miss float64
			for i := 0; i < b.N; i++ {
				cmp, err := core.Compare("hashmap", tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				miss = cmp.BestGMM().MissRatePct()
			}
			b.ReportMetric(miss, "gmm-miss-%")
		})
	}
}

// BenchmarkAblation1DGMM compares spatial-only scoring against the 2-D
// model (Sec. 2.3's motivation for the temporal dimension).
func BenchmarkAblation1DGMM(b *testing.B) {
	o := experiments.DefaultOptions()
	o.Requests = benchRequests
	o.Config = benchConfig()
	o.Benchmarks = []string{"memtier"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation1D(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThreshold sweeps the admission quantile.
func BenchmarkAblationThreshold(b *testing.B) {
	o := experiments.DefaultOptions()
	o.Requests = benchRequests
	o.Config = benchConfig()
	o.Config.AutoThreshold = false
	o.Benchmarks = []string{"dlrm"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationThreshold(o, []float64{0, 0.05, 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWindow sweeps the Algorithm 1 parameters.
func BenchmarkAblationWindow(b *testing.B) {
	o := experiments.DefaultOptions()
	o.Requests = benchRequests
	o.Config = benchConfig()
	o.Benchmarks = []string{"parsec"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWindow(o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine: sharded experiment fan-out ---

// benchmarkRunAll measures a full seven-benchmark RunAll grid at the given
// worker count. The ratio BenchmarkRunAllSequential / BenchmarkRunAllWorkers8
// is the engine's wall-clock speedup; results are bit-identical at any
// worker count (see TestRunAllDeterministicAcrossWorkers).
func benchmarkRunAll(b *testing.B, workers int) {
	o := experiments.DefaultOptions()
	o.Requests = 60_000
	o.Config = benchConfig()
	o.Config.Train.K = 16
	o.Config.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmps, err := experiments.RunAll(o, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(cmps) != 7 {
			b.Fatalf("comparisons = %d, want 7", len(cmps))
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchmarkRunAll(b, 1) }
func BenchmarkRunAllWorkers8(b *testing.B)   { benchmarkRunAll(b, 8) }

// --- Component micro-benchmarks ---

// BenchmarkEMTraining measures one full EM fit at the bench configuration.
func BenchmarkEMTraining(b *testing.B) {
	tr := workload.NewParsec().Generate(benchRequests, 1)
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gmm.FitTrace(tr, cfg.Transform, cfg.Train); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheAccess measures the raw cache lookup/replacement path.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := newBenchCache()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%50000), i%4 == 0)
	}
}

// BenchmarkTracePreprocess measures the Sec. 3.1 pipeline.
func BenchmarkTracePreprocess(b *testing.B) {
	tr := workload.NewHeap().Generate(benchRequests, 1)
	cfg := trace.DefaultTransformConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := trace.Preprocess(tr, cfg); len(s) == 0 {
			b.Fatal("empty preprocess output")
		}
	}
}
